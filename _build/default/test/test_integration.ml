(* End-to-end integration tests: the full AFEX pipeline against the
   simulated evaluation targets, asserting the paper's qualitative
   claims at reduced budgets (the full-budget runs live in bench/). *)

module Subspace = Afex_faultspace.Subspace
module Point = Afex_faultspace.Point
module Shuffle = Afex_faultspace.Shuffle
module Rng = Afex_stats.Rng
module Target = Afex_simtarget.Target
module Coreutils = Afex_simtarget.Coreutils
module Apache = Afex_simtarget.Apache
module Mysql = Afex_simtarget.Mysql
module Mongodb = Afex_simtarget.Mongodb
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Outcome = Afex_injector.Outcome
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Simulation = Afex_cluster.Simulation

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let apache_executor = lazy (Afex.Executor.of_target (Apache.target ()))

let run_apache config ~iterations =
  Session.run ~iterations config (Apache.space ()) (Lazy.force apache_executor)

let test_fitness_beats_random_apache () =
  (* Averaged over seeds: an individual short run can miss the crash
     clusters entirely (the paper's comparisons use much larger budgets). *)
  let totals config =
    List.fold_left
      (fun (f, c) seed ->
        let r = run_apache (config ~seed ()) ~iterations:600 in
        (f + r.Session.failed, c + r.Session.crashed))
      (0, 0) [ 1; 2; 3 ]
  in
  let fg_failed, fg_crashed = totals (fun ~seed () -> Config.fitness_guided ~seed ()) in
  let rnd_failed, rnd_crashed = totals (fun ~seed () -> Config.random_search ~seed ()) in
  checkb
    (Printf.sprintf "failed: fitness %d vs random %d" fg_failed rnd_failed)
    true
    (float_of_int fg_failed >= 1.5 *. float_of_int rnd_failed);
  checkb
    (Printf.sprintf "crashes: fitness %d vs random %d" fg_crashed rnd_crashed)
    true (fg_crashed > rnd_crashed)

let test_fitness_beats_random_coreutils () =
  let executor = Afex.Executor.of_target (Coreutils.target ()) in
  let sub = Coreutils.space () in
  let fg = Session.run ~iterations:250 (Config.fitness_guided ~seed:2 ()) sub executor in
  let rnd = Session.run ~iterations:250 (Config.random_search ~seed:2 ()) sub executor in
  checkb "fitness finds more failures" true (fg.Session.failed > rnd.Session.failed)

let test_exhaustive_finds_global_truth () =
  (* Exhaustive over coreutils finds every failing fault; the sampled
     strategies can only find subsets. *)
  let executor = Afex.Executor.of_target (Coreutils.target ()) in
  let sub = Coreutils.space () in
  let exh =
    Session.run ~iterations:(Subspace.cardinality sub) (Config.exhaustive ~seed:3 ()) sub executor
  in
  let fg = Session.run ~iterations:250 (Config.fitness_guided ~seed:3 ()) sub executor in
  checkb "exhaustive is the ceiling" true (exh.Session.failed >= fg.Session.failed);
  checkb "failures exist" true (exh.Session.failed > 50)

let test_structure_loss_hurts_on_average () =
  (* Averaged over seeds, shuffling every axis must cost the guided search
     failures compared to the intact space. *)
  let sub = Apache.space () in
  let executor = Lazy.force apache_executor in
  let total_for transform_of seed =
    let r =
      Session.run
        ?transform:(transform_of seed)
        ~iterations:400
        (Config.fitness_guided ~seed ())
        sub executor
    in
    r.Session.failed
  in
  let seeds = [ 21; 22; 23 ] in
  let intact = List.fold_left (fun acc s -> acc + total_for (fun _ -> None) s) 0 seeds in
  let shuffled =
    List.fold_left
      (fun acc s ->
        acc
        + total_for
            (fun seed ->
              let sh = Shuffle.shuffle_all (Rng.create (1000 + seed)) sub in
              Some (Shuffle.to_target sh))
            s)
      0 seeds
  in
  checkb
    (Printf.sprintf "intact %d > shuffled %d" intact shuffled)
    true (intact > shuffled)

let test_feedback_increases_unique_failures () =
  let fg = run_apache (Config.fitness_guided ~seed:4 ()) ~iterations:800 in
  let fgf =
    run_apache { (Config.fitness_guided ~seed:4 ()) with Config.feedback = true }
      ~iterations:800
  in
  checkb
    (Printf.sprintf "unique failures %d (feedback) >= %d (plain)"
       fgf.Session.distinct_failure_traces fg.Session.distinct_failure_traces)
    true
    (fgf.Session.distinct_failure_traces >= fg.Session.distinct_failure_traces)

let test_apache_bug_reachable_by_direct_injection () =
  (* Fig. 7: a strdup OOM in a module-registration test crashes the server
     with no recovery frame. *)
  let target = Apache.target () in
  let fault = Fault.make ~test_id:30 ~func:"strdup" ~call_number:1 () in
  let outcome = Engine.run target fault in
  checkb "crashes" true (outcome.Outcome.status = Outcome.Crashed);
  match Apache.known_bug_stacks () with
  | [ (_, stack) ] -> checkb "matches the planted stack" true (outcome.Outcome.crash_stack = Some stack)
  | _ -> Alcotest.fail "expected one known bug"

let test_mysql_bugs_reachable_by_direct_injection () =
  let target = Mysql.target () in
  (* errmsg.sys: the first read of any server-level test. *)
  let errmsg = Engine.run target (Fault.make ~test_id:0 ~func:"read" ~call_number:1 ()) in
  checkb "errmsg crash" true (errmsg.Outcome.status = Outcome.Crashed);
  (* double unlock: the first close of a MyISAM DDL test, with a recovery
     frame on top of the stack (the bug is in recovery code). *)
  let unlock = Engine.run target (Fault.make ~test_id:410 ~func:"close" ~call_number:1 ()) in
  checkb "double-unlock crash" true (unlock.Outcome.status = Outcome.Crashed);
  (match unlock.Outcome.crash_stack with
  | Some (top :: _) ->
      checkb "crashes inside recovery" true
        (String.length top > 9 && String.sub top 0 9 = "recovery@")
  | Some [] | None -> Alcotest.fail "expected crash stack")

let test_table6_ground_truth_positive () =
  let target = Coreutils.target () in
  let failing = ref 0 in
  List.iter
    (fun test_id ->
      List.iter
        (fun call_number ->
          let fault = Fault.make ~test_id ~func:"malloc" ~call_number () in
          if Outcome.failed (Engine.run target fault) then incr failing)
        [ 1; 2 ])
    Coreutils.ln_mv_test_ids;
  checkb
    (Printf.sprintf "ground truth near the paper's 28 (got %d)" !failing)
    true
    (!failing >= 20 && !failing <= 36)

let test_mongodb_advantage_shrinks_with_maturity () =
  let run target sub seed fitness =
    let executor = Afex.Executor.of_target target in
    let config = if fitness then Config.fitness_guided ~seed () else Config.random_search ~seed () in
    (Session.run ~iterations:250 config sub executor).Session.failed
  in
  let ratio target sub =
    let fg = run target sub 5 true and rnd = run target sub 5 false in
    float_of_int fg /. float_of_int (max 1 rnd)
  in
  let r08 = ratio (Mongodb.target_v08 ()) (Mongodb.space_v08 ()) in
  let r20 = ratio (Mongodb.target_v20 ()) (Mongodb.space_v20 ()) in
  checkb
    (Printf.sprintf "advantage shrinks: v0.8 %.2fx > v2.0 %.2fx" r08 r20)
    true (r08 > r20);
  checkb "still some advantage in v2.0" true (r20 > 1.0)

let test_cluster_session_agrees_with_sequential () =
  (* A 1-node cluster simulation and a sequential session with the same
     configuration execute the same number of tests and find failures of
     the same order. *)
  let sub = Apache.space () in
  let executor = Lazy.force apache_executor in
  let seq = Session.run ~iterations:300 (Config.fitness_guided ~seed:6 ()) sub executor in
  let sim =
    Simulation.run
      { Simulation.default_config with Simulation.nodes = 1; iterations = 300 }
      (Config.fitness_guided ~seed:6 ())
      sub executor
  in
  checki "same test count" seq.Session.iterations sim.Simulation.tests_executed;
  checkb "similar failure count" true
    (abs (seq.Session.failed - sim.Simulation.failed) * 10 < 300 * 3)

let test_sensitivity_tracks_planted_structure () =
  (* Sensitivity measures the benefit of mutating an axis. If failures
     live in a narrow band of one axis, mutating THAT axis usually exits
     the band (low benefit), while mutating the others keeps failing (high
     benefit). Swapping which axis carries the band must swap the
     sensitivity ordering. *)
  let sub =
    Subspace.make
      [
        Afex_faultspace.Axis.range "testId" ~lo:0 ~hi:49;
        Afex_faultspace.Axis.symbols "function" [ "read"; "close" ];
        Afex_faultspace.Axis.range "callNumber" ~lo:1 ~hi:50;
      ]
  in
  let total_blocks = 4 in
  let executor_with failing =
    Afex.Executor.of_fn ~total_blocks ~description:"banded" (fun fault ->
        {
          Outcome.fault;
          status = (if failing fault then Outcome.Test_failed else Outcome.Passed);
          triggered = true;
          coverage = Afex_stats.Bitset.create total_blocks;
          injection_stack = Some [ "libc.so:" ^ fault.Fault.func ];
          crash_stack = None;
          duration_ms = 1.0;
        })
  in
  let sens_of failing =
    let r =
      Session.run ~iterations:400
        (Config.fitness_guided ~seed:7 ())
        sub
        (executor_with failing)
    in
    r.Session.sensitivity
  in
  let call_banded =
    sens_of (fun f -> f.Fault.call_number >= 10 && f.Fault.call_number <= 15)
  in
  let test_banded = sens_of (fun f -> f.Fault.test_id >= 10 && f.Fault.test_id <= 15) in
  checkb
    (Printf.sprintf "call band: test axis beats call axis (%.2f vs %.2f)"
       call_banded.(0) call_banded.(2))
    true
    (call_banded.(0) > call_banded.(2));
  checkb
    (Printf.sprintf "test band: call axis beats test axis (%.2f vs %.2f)"
       test_banded.(2) test_banded.(0))
    true
    (test_banded.(2) > test_banded.(0))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("fitness beats random (Apache)", test_fitness_beats_random_apache);
      ("fitness beats random (coreutils)", test_fitness_beats_random_coreutils);
      ("exhaustive is the ceiling", test_exhaustive_finds_global_truth);
      ("structure loss hurts (avg over seeds)", test_structure_loss_hurts_on_average);
      ("feedback increases unique failures", test_feedback_increases_unique_failures);
      ("Apache Fig.7 bug reachable", test_apache_bug_reachable_by_direct_injection);
      ("MySQL planted bugs reachable", test_mysql_bugs_reachable_by_direct_injection);
      ("Table 6 ground truth positive", test_table6_ground_truth_positive);
      ("MongoDB advantage shrinks", test_mongodb_advantage_shrinks_with_maturity);
      ("cluster sim agrees with sequential", test_cluster_session_agrees_with_sequential);
      ("sensitivity tracks planted structure", test_sensitivity_tracks_planted_structure);
    ]
