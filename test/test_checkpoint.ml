(* Crash-safe checkpoint/resume: codec round-trips on random explorer
   states, corruption rejection (truncation, bit flips, torn journal
   tails), and deterministic crash-point sweeps — the in-process copy of
   what the CI kill -9 harness proves on the real binary. *)

module Checkpoint = Afex_cluster.Checkpoint
module Scheduler = Afex_cluster.Scheduler
module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Explorer = Afex.Explorer
module Export = Afex_report.Export
module Rng = Afex_stats.Rng
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0
let executor () = Afex.Executor.of_target (Apache.target ())
let space () = Apache.space ()

let temp_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "afex_ck_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Deliberately awkward metadata: escaping must survive the round trip. *)
let meta =
  [
    ("format", "1");
    ("target", "apache");
    ("seed", "7");
    ("no te", "sp ace\tand\npercent % and \\ backslash");
  ]

(* ---- snapshot codec properties --------------------------------------- *)

(* A random mid-campaign explorer: random strategy, seed, feedback flag
   and progress point, captured at a batch boundary (nothing pending). *)
let arb_snapshot =
  Prop.make
    ~show:(fun (s : Checkpoint.Snapshot.t) ->
      Printf.sprintf "<snapshot: %d iterations, %d batches>"
        s.Checkpoint.Snapshot.explorer.Explorer.Snapshot.iterations
        s.Checkpoint.Snapshot.batches)
    (fun rng ->
      let seed = Rng.int rng 10_000 in
      let steps = Rng.int rng 61 in
      let config =
        match Rng.int rng 3 with
        | 0 -> Config.fitness_guided ~seed ()
        | 1 -> Config.random_search ~seed ()
        | _ -> Config.exhaustive ~seed ()
      in
      let config = { config with Config.feedback = Rng.bernoulli rng 0.5 } in
      let ex = Explorer.create config (space ()) (executor ()) in
      for _ = 1 to steps do
        match Explorer.next ex with
        | Some p -> ignore (Explorer.execute ex p)
        | None -> ()
      done;
      let scheduler =
        if Rng.bernoulli rng 0.5 then
          Some
            (Scheduler.snapshot
               (Scheduler.create ~window_min:1 ~window_max:64 ~initial:8
                  ~seed:(Rng.int rng 1000) Scheduler.Adaptive))
        else None
      in
      {
        Checkpoint.Snapshot.meta;
        batches = Rng.int rng 50;
        master_state = Rng.state (Rng.create (Rng.int rng 10_000));
        scheduler;
        explorer = Explorer.capture ex;
      })

let test_codec_roundtrip () =
  Prop.check ~count:25 "snapshot encode/decode/encode is bit-identical"
    arb_snapshot (fun snap ->
      let bytes = Checkpoint.Snapshot.encode snap in
      match Checkpoint.Snapshot.decode bytes with
      | Error _ -> false
      | Ok snap' -> String.equal (Checkpoint.Snapshot.encode snap') bytes)

(* One representative encoded snapshot for the corruption sweeps. *)
let sample_bytes =
  lazy
    (let rng = Rng.create 42 in
     Checkpoint.Snapshot.encode (arb_snapshot.Prop.gen rng))

let test_truncation_rejected () =
  let bytes = Lazy.force sample_bytes in
  Prop.check ~count:80 "truncated snapshot is a clean Error"
    (Prop.int_range 0 (String.length bytes - 1))
    (fun cut ->
      match Checkpoint.Snapshot.decode (String.sub bytes 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let test_bitflip_rejected () =
  let bytes = Lazy.force sample_bytes in
  Prop.check ~count:80 "bit-flipped snapshot is a clean Error"
    (Prop.int_range 0 ((String.length bytes * 8) - 1))
    (fun bit ->
      let b = Bytes.of_string bytes in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      match Checkpoint.Snapshot.decode (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)

(* ---- explorer-level capture/restore ---------------------------------- *)

let history (r : Afex.Session.result) =
  List.map
    (fun (c : Afex.Test_case.t) ->
      ( Afex_faultspace.Point.key c.Afex.Test_case.point,
        Afex_injector.Outcome.status_to_string c.Afex.Test_case.status,
        c.Afex.Test_case.fitness ))
    r.Afex.Session.executed

(* Capture mid-campaign, restore, continue: the tail must equal the
   uninterrupted run's, for every strategy (exhaustive exercises the
   cursor_consumed path). *)
let test_capture_restore_continues () =
  List.iter
    (fun config ->
      let drive ex n =
        for _ = 1 to n do
          match Explorer.next ex with
          | Some p -> ignore (Explorer.execute ex p)
          | None -> ()
        done
      in
      let full = Explorer.create config (space ()) (executor ()) in
      drive full 90;
      let half = Explorer.create config (space ()) (executor ()) in
      drive half 40;
      let snap = Explorer.capture half in
      match Explorer.restore config (space ()) (executor ()) snap with
      | Error e -> Alcotest.fail e
      | Ok resumed ->
          drive resumed 50;
          let tail ex =
            List.map
              (fun (c : Afex.Test_case.t) ->
                (Afex_faultspace.Point.key c.Afex.Test_case.point, c.Afex.Test_case.status))
              (Explorer.records ex)
          in
          checkb "restored tail = uninterrupted tail" true (tail resumed = tail full))
    [
      Config.fitness_guided ~seed:13 ();
      Config.random_search ~seed:13 ();
      Config.exhaustive ~seed:13 ();
    ]

(* ---- checkpoint lifecycle -------------------------------------------- *)

let test_start_refuses_existing () =
  with_dir (fun dir ->
      (match Checkpoint.start ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Checkpoint.write_snapshot cp ~iterations:0
            {
              Checkpoint.Snapshot.meta;
              batches = 0;
              master_state = 1L;
              scheduler = None;
              explorer = Explorer.capture (Explorer.create
                (Config.fitness_guided ~seed:1 ()) (space ()) (executor ()));
            };
          Checkpoint.close cp);
      match Checkpoint.start ~dir meta with
      | Ok _ -> Alcotest.fail "start over an existing snapshot must be refused"
      | Error e -> checkb "mentions --resume" true (contains e "--resume"))

let test_resume_refuses_empty () =
  with_dir (fun dir ->
      match Checkpoint.resume ~dir meta with
      | Ok _ -> Alcotest.fail "resume of an empty directory must be refused"
      | Error _ -> ())

let test_meta_mismatch_rejected () =
  with_dir (fun dir ->
      (match Checkpoint.start ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Checkpoint.write_snapshot cp ~iterations:0
            {
              Checkpoint.Snapshot.meta;
              batches = 0;
              master_state = 1L;
              scheduler = None;
              explorer = Explorer.capture (Explorer.create
                (Config.fitness_guided ~seed:1 ()) (space ()) (executor ()));
            };
          Checkpoint.close cp);
      match Checkpoint.resume ~dir (("seed", "8") :: List.remove_assoc "seed" meta) with
      | Ok _ -> Alcotest.fail "resume under a different seed must be refused"
      | Error e -> checkb "names the mismatched key" true (contains e "seed"))

(* ---- crash-point sweep over a real pooled campaign ------------------- *)

exception Crash

let session_exports ?checkpoint config =
  let pool = Pool.create ~jobs:1 (Pool.Pure (executor ())) in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let result, _ =
        Pool.session ?checkpoint ~batch_size:8 ~iterations:120 pool config (space ())
      in
      ( Export.summary_to_json ~target:"apache" result,
        Export.records_to_csv result ))

let crash_at ~dir ~config hooks =
  match Checkpoint.start ~hooks ~every:25 ~dir meta with
  | Error e -> Alcotest.fail e
  | Ok cp ->
      let crashed =
        match session_exports ~checkpoint:cp config with
        | _ -> false
        | exception Crash -> true
      in
      Checkpoint.close cp;
      crashed

let resume_to_end ~dir ~config =
  match Checkpoint.resume ~every:25 ~dir meta with
  | Error e -> Alcotest.fail e
  | Ok cp ->
      Fun.protect
        ~finally:(fun () -> Checkpoint.close cp)
        (fun () -> session_exports ~checkpoint:cp config)

let test_kill_point_sweep () =
  let config = Config.fitness_guided ~seed:7 () in
  let base_json, base_csv = session_exports config in
  (* Learn the append count of the uninterrupted campaign, then crash at
     early / mid / late appends plus one past the midpoint snapshot. *)
  let total = ref 0 in
  with_dir (fun dir ->
      let hooks = { Checkpoint.no_hooks with Checkpoint.on_append = (fun n -> total := n) } in
      (match Checkpoint.start ~hooks ~every:25 ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          ignore (session_exports ~checkpoint:cp config);
          Checkpoint.close cp));
  let points = [ 1; 5; !total / 2; !total - 1 ] in
  List.iter
    (fun k ->
      with_dir (fun dir ->
          let hooks =
            {
              Checkpoint.no_hooks with
              Checkpoint.on_append = (fun n -> if n = k then raise Crash);
            }
          in
          checkb (Printf.sprintf "crashed at append %d" k) true
            (crash_at ~dir ~config hooks);
          let json, csv = resume_to_end ~dir ~config in
          checks (Printf.sprintf "JSON identical after crash at append %d" k)
            base_json json;
          checks (Printf.sprintf "CSV identical after crash at append %d" k)
            base_csv csv))
    points

(* Crash in the window between the snapshot rename and the journal
   truncation: the journal then still holds entries the snapshot already
   covers, which resume must discard. *)
let test_crash_between_rename_and_truncate () =
  let config = Config.fitness_guided ~seed:7 () in
  let base_json, base_csv = session_exports config in
  with_dir (fun dir ->
      let snapshots = ref 0 in
      let hooks =
        {
          Checkpoint.no_hooks with
          Checkpoint.after_rename =
            (fun () ->
              incr snapshots;
              if !snapshots = 2 then raise Crash);
        }
      in
      checkb "crashed after rename" true (crash_at ~dir ~config hooks);
      let json, csv = resume_to_end ~dir ~config in
      checks "JSON identical after rename-window crash" base_json json;
      checks "CSV identical after rename-window crash" base_csv csv)

(* Crash the resumed run too: recovery must compose. *)
let test_double_crash () =
  let config = Config.fitness_guided ~seed:7 () in
  let base_json, base_csv = session_exports config in
  with_dir (fun dir ->
      checkb "first crash" true
        (crash_at ~dir ~config
           {
             Checkpoint.no_hooks with
             Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
           });
      (match
         Checkpoint.resume ~every:25
           ~hooks:
             {
               Checkpoint.no_hooks with
               Checkpoint.on_append = (fun n -> if n = 30 then raise Crash);
             }
           ~dir meta
       with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          (match session_exports ~checkpoint:cp config with
          | _ -> Alcotest.fail "second crash did not fire"
          | exception Crash -> ());
          Checkpoint.close cp);
      let json, csv = resume_to_end ~dir ~config in
      checks "JSON identical after double crash" base_json json;
      checks "CSV identical after double crash" base_csv csv)

(* ---- journal damage --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_torn_wal_tail_tolerated () =
  let config = Config.fitness_guided ~seed:7 () in
  let base_json, _ = session_exports config in
  with_dir (fun dir ->
      checkb "crashed" true
        (crash_at ~dir ~config
           {
             Checkpoint.no_hooks with
             Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
           });
      (* Tear the final journal line, as a crash mid-write would. *)
      let wal = Filename.concat dir "wal.log" in
      let bytes = read_file wal in
      write_file wal (String.sub bytes 0 (String.length bytes - 7));
      let json, _ = resume_to_end ~dir ~config in
      checks "torn tail re-executed, export identical" base_json json)

let test_corrupt_wal_interior_rejected () =
  let config = Config.fitness_guided ~seed:7 () in
  with_dir (fun dir ->
      checkb "crashed" true
        (crash_at ~dir ~config
           {
             Checkpoint.no_hooks with
             Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
           });
      let wal = Filename.concat dir "wal.log" in
      let bytes = Bytes.of_string (read_file wal) in
      (* Flip a byte in the middle of the journal, not on the last line. *)
      Bytes.set bytes (Bytes.length bytes / 3) '\xff';
      write_file wal (Bytes.to_string bytes);
      match Checkpoint.resume ~every:25 ~dir meta with
      | Ok _ -> Alcotest.fail "interior journal corruption must be rejected"
      | Error _ -> ())

let test_stop_incompatible () =
  with_dir (fun dir ->
      match Checkpoint.start ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Fun.protect
            ~finally:(fun () -> Checkpoint.close cp)
            (fun () ->
              let pool = Pool.create ~jobs:1 (Pool.Pure (executor ())) in
              Fun.protect
                ~finally:(fun () -> Pool.shutdown pool)
                (fun () ->
                  Alcotest.check_raises "stop + checkpoint rejected"
                    (Invalid_argument
                       "Pool.session: a checkpoint cannot capture a stop \
                        predicate; bound a checkpointed campaign with \
                        iterations or a time budget")
                    (fun () ->
                      ignore
                        (Pool.session ~checkpoint:cp
                           ~stop:{ Afex.Session.matches = (fun _ -> false); count = 1 }
                           ~batch_size:8 ~iterations:40 pool
                           (Config.fitness_guided ~seed:7 ())
                           (space ()))))))

let suite =
  [
    ("snapshot codec round-trips bit-identically", `Quick, test_codec_roundtrip);
    ("truncated snapshot rejected cleanly", `Quick, test_truncation_rejected);
    ("bit-flipped snapshot rejected cleanly", `Quick, test_bitflip_rejected);
    ("capture/restore continues every strategy", `Quick, test_capture_restore_continues);
    ("start refuses an existing checkpoint", `Quick, test_start_refuses_existing);
    ("resume refuses an empty directory", `Quick, test_resume_refuses_empty);
    ("resume rejects mismatched campaign metadata", `Quick, test_meta_mismatch_rejected);
    ("kill-point sweep resumes byte-identically", `Quick, test_kill_point_sweep);
    ("crash between rename and truncate recovers", `Quick,
      test_crash_between_rename_and_truncate);
    ("double crash recovers", `Quick, test_double_crash);
    ("torn journal tail is re-executed", `Quick, test_torn_wal_tail_tolerated);
    ("interior journal corruption rejected", `Quick, test_corrupt_wal_interior_rejected);
    ("stop predicates cannot be checkpointed", `Quick, test_stop_incompatible);
  ]
