(* The work-stealing runtime's two data structures in isolation — the
   submission-indexed reorder buffer and the Chase–Lev-style deque —
   plus the cross-executor determinism matrix the whole design exists
   for: the same campaign exported byte-identically from the inline,
   Domain-stealing, event-loop and loopback-remote backends, a kill at
   a reorder-buffer sync watermark resumed to the same bytes, and a
   committed adaptive trace replayed against a committed export. *)

module Runtime = Afex_cluster.Runtime
module Pool = Afex_cluster.Pool
module Scheduler = Afex_cluster.Scheduler
module Checkpoint = Afex_cluster.Checkpoint
module RM = Afex_cluster.Remote_manager
module Config = Afex.Config
module Session = Afex.Session
module Export = Afex_report.Export
module Rng = Afex_stats.Rng
module Apache = Afex_simtarget.Apache
module Mysql = Afex_simtarget.Mysql
module Netsim = Afex_simtarget.Netsim
module Netfault = Afex_injector.Netfault
module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- the reorder buffer ------------------------------------------------ *)

(* A random permutation of 0..n-1: the completion order of n submitted
   tasks, as adversarial as a scheduler can make it. *)
let arb_perm =
  Prop.make
    ~show:(fun l -> "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")
    (fun rng ->
      let n = Rng.int rng 26 in
      let a = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      Array.to_list a)

let test_prop_reorder_release_order () =
  Prop.check ~count:300 "release order = submission order" arb_perm (fun perm ->
      let n = List.length perm in
      let rb = Runtime.Reorder.create () in
      let released = ref [] in
      let ok = ref true in
      List.iter
        (fun seq ->
          Runtime.Reorder.offer rb ~seq seq;
          let rec drain () =
            let w = Runtime.Reorder.watermark rb in
            match Runtime.Reorder.pop rb with
            | Some v ->
                (* each pop releases exactly the watermark and advances
                   it by exactly one *)
                if v <> w then ok := false;
                if Runtime.Reorder.watermark rb <> w + 1 then ok := false;
                released := v :: !released;
                drain ()
            | None -> ()
          in
          drain ())
        perm;
      !ok
      && List.rev !released = List.init n (fun i -> i)
      && Runtime.Reorder.buffered rb = 0
      && Runtime.Reorder.watermark rb = n)

let test_prop_reorder_rejects_dup_and_stale () =
  Prop.check ~count:300 "duplicate and stale offers raise" arb_perm (fun perm ->
      match perm with
      | [] -> true
      | _ ->
          let rb = Runtime.Reorder.create () in
          let dup_ok = ref true in
          List.iter
            (fun seq ->
              Runtime.Reorder.offer rb ~seq seq;
              match Runtime.Reorder.offer rb ~seq seq with
              | () -> dup_ok := false
              | exception Invalid_argument _ -> ())
            perm;
          let rec drain () =
            match Runtime.Reorder.pop rb with Some _ -> drain () | None -> ()
          in
          drain ();
          let stale_ok =
            match Runtime.Reorder.offer rb ~seq:0 0 with
            | () -> false
            | exception Invalid_argument _ -> true
          in
          !dup_ok && stale_ok)

let test_reorder_head_of_line_gap () =
  let rb = Runtime.Reorder.create () in
  Runtime.Reorder.offer rb ~seq:1 11;
  Runtime.Reorder.offer rb ~seq:3 33;
  checkb "pop blocked on the gap" true (Runtime.Reorder.pop rb = None);
  checkb "peek blocked on the gap" true (Runtime.Reorder.peek rb = None);
  checki "backlog counts buffered" 2 (Runtime.Reorder.buffered rb);
  checki "watermark unmoved" 0 (Runtime.Reorder.watermark rb);
  Runtime.Reorder.offer rb ~seq:0 0;
  checkb "gap filled releases the head" true (Runtime.Reorder.pop rb = Some 0);
  checkb "then the buffered successor" true (Runtime.Reorder.pop rb = Some 11);
  checkb "next gap blocks again" true (Runtime.Reorder.pop rb = None);
  Runtime.Reorder.offer rb ~seq:2 22;
  checkb "late middle releases" true (Runtime.Reorder.pop rb = Some 22);
  checkb "tail releases" true (Runtime.Reorder.pop rb = Some 33);
  checki "drained" 0 (Runtime.Reorder.buffered rb)

let test_reorder_peek_does_not_advance () =
  let rb = Runtime.Reorder.create () in
  Runtime.Reorder.offer rb ~seq:0 7;
  checkb "peek sees the head" true (Runtime.Reorder.peek rb = Some 7);
  checkb "peek again sees the same head" true (Runtime.Reorder.peek rb = Some 7);
  checki "watermark unmoved by peek" 0 (Runtime.Reorder.watermark rb);
  checkb "pop still releases it" true (Runtime.Reorder.pop rb = Some 7);
  checki "watermark moved by pop" 1 (Runtime.Reorder.watermark rb)

let test_reorder_custom_base () =
  (* A resumed campaign creates its buffer at the snapshot's iteration
     count, not zero. *)
  let rb = Runtime.Reorder.create ~next:100 () in
  Runtime.Reorder.offer rb ~seq:102 2;
  Runtime.Reorder.offer rb ~seq:100 0;
  Runtime.Reorder.offer rb ~seq:101 1;
  checkb "releases from the base" true (Runtime.Reorder.pop rb = Some 0);
  checkb "in order" true (Runtime.Reorder.pop rb = Some 1);
  checkb "to the tail" true (Runtime.Reorder.pop rb = Some 2);
  checki "watermark counts from the base" 103 (Runtime.Reorder.watermark rb);
  checkb "seq below the base is stale" true
    (match Runtime.Reorder.offer rb ~seq:99 9 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- the work-stealing deque ------------------------------------------- *)

(* 0 = push, 1 = owner pop, 2 = steal: any single-threaded interleaving
   must agree with the list model (push at the bottom, pop LIFO, steal
   FIFO) and never lose or duplicate an element. capacity 2 forces the
   ring to grow under load. *)
let test_prop_deque_matches_model () =
  Prop.check ~count:300 "deque ops match the list model"
    (Prop.list ~max_length:40 (Prop.int_range 0 2))
    (fun ops ->
      let d = Runtime.Deque.create ~capacity:2 () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Runtime.Deque.push d !counter;
              model := !model @ [ !counter ]
          | 1 -> (
              let expect =
                match List.rev !model with [] -> None | x :: _ -> Some x
              in
              let got = Runtime.Deque.pop d in
              if got <> expect then ok := false;
              match expect with
              | Some _ -> model := List.rev (List.tl (List.rev !model))
              | None -> ())
          | _ -> (
              let expect = match !model with [] -> None | x :: _ -> Some x in
              let got = Runtime.Deque.steal d in
              if got <> expect then ok := false;
              match expect with
              | Some _ -> model := List.tl !model
              | None -> ()))
        ops;
      !ok && Runtime.Deque.length d = List.length !model)

let test_deque_concurrent_steal_no_loss () =
  (* Three thieves and the owner race to empty the deque; every element
     must surface exactly once. The last-element race (pop vs steal) is
     the only lock-free subtlety in the structure, so hammer it. *)
  let d = Runtime.Deque.create ~capacity:4 () in
  let n = 2000 in
  for i = 1 to n do
    Runtime.Deque.push d i
  done;
  let taken = Array.init 4 (fun _ -> ref []) in
  let drain take mine =
    let rec go misses =
      if misses < 10_000 then
        match take () with
        | Some v ->
            mine := v :: !mine;
            go 0
        | None -> go (misses + 1)
    in
    go 0
  in
  let thieves =
    List.init 3 (fun k ->
        Domain.spawn (fun () -> drain (fun () -> Runtime.Deque.steal d) taken.(k)))
  in
  drain (fun () -> Runtime.Deque.pop d) taken.(3);
  List.iter Domain.join thieves;
  let all = List.concat_map (fun r -> !r) (Array.to_list taken) in
  checki "every element surfaced" n (List.length all);
  checki "no element twice" n (List.length (List.sort_uniq compare all));
  checki "deque drained" 0 (Runtime.Deque.length d)

(* --- the cross-executor determinism matrix ----------------------------- *)

(* One campaign per target family, exported from every backend the
   runtime unifies — inline (jobs 1), work-stealing Domains (jobs 4),
   the async event loop (inflight 8) and a loopback remote manager
   behind a proxy domain — and byte-diffed pairwise. This is the
   tentpole's contract: parallelism placement may change throughput,
   never a byte of the explored history. *)
let matrix_exports ~tag ~iterations ~seed space mk_exec =
  let leg ?remotes ?inflight ~jobs () =
    let result, _ =
      Pool.run ?remotes ?inflight ~batch_size:8 ~jobs ~iterations
        (Config.fitness_guided ~seed ())
        space
        (Pool.Pure (mk_exec ()))
    in
    (Export.summary_to_json ~target:tag result, Export.records_to_csv result)
  in
  let base = leg ~jobs:1 () in
  let legs =
    [ ("jobs=4", leg ~jobs:4 ()); ("inflight=8", leg ~inflight:8 ~jobs:1 ()) ]
  in
  let lb = RM.Loopback.create ~executor:(mk_exec ()) () in
  let remote = leg ~remotes:[ RM.Loopback.spec lb ] ~jobs:1 () in
  RM.Loopback.shutdown lb;
  List.iter
    (fun (name, (json, csv)) ->
      checks (tag ^ " " ^ name ^ " JSON") (fst base) json;
      checks (tag ^ " " ^ name ^ " CSV") (snd base) csv)
    (legs @ [ ("loopback-remote", remote) ])

let test_matrix_mysql () =
  matrix_exports ~tag:"mysql" ~iterations:150 ~seed:41 (Mysql.space ())
    (fun () -> Afex.Executor.of_target (Mysql.target ()))

let test_matrix_netsim () =
  let server = Netsim.httpd_like () in
  matrix_exports ~tag:"netsim" ~iterations:120 ~seed:41 (Netfault.space server)
    (fun () ->
      Afex.Executor.of_scenario_fn
        ~total_blocks:(Netfault.total_request_blocks server)
        ~description:"netsim" (Netfault.run_scenario server))

let replsim_cluster = Replsim.make ~n:6 ~rounds:120 ~seed:9 ()

let test_matrix_replsim () =
  matrix_exports ~tag:"replsim" ~iterations:150 ~seed:21
    (Replfault.multi_space ~arms:2 replsim_cluster)
    (fun () ->
      Afex.Executor.of_scenario_fn
        ~total_blocks:(Replsim.total_blocks replsim_cluster)
        ~description:(Replfault.description replsim_cluster)
        (Replfault.run_scenario replsim_cluster))

let test_sequential_leg_matches_session_run () =
  (* With a window of one the pool's schedule degenerates to exactly the
     core sequential session — the determinism baseline every other
     matrix leg is transitively compared against. *)
  let config = Config.fitness_guided ~seed:41 () in
  let sequential =
    Session.run ~iterations:150 config (Mysql.space ())
      (Afex.Executor.of_target (Mysql.target ()))
  in
  let pooled, _ =
    Pool.run ~batch_size:1 ~jobs:1 ~iterations:150 config (Mysql.space ())
      (Pool.Pure (Afex.Executor.of_target (Mysql.target ())))
  in
  checks "sequential leg JSON"
    (Export.summary_to_json ~target:"mysql" sequential)
    (Export.summary_to_json ~target:"mysql" pooled)

(* --- kill -9 at a reorder-buffer sync watermark ------------------------ *)

exception Crash

let test_kill_and_resume_at_watermark () =
  (* sync_every 32 < iterations 150: the campaign hits real mid-flight
     watermarks, and the every:25 cadence writes its snapshot at the
     first one (release 32, where nothing is in flight). Crash at the
     40th journal append — past that snapshot — and the resume must
     restore the *watermark* snapshot (a handful of journaled outcomes
     replayed, not the whole campaign) and still reproduce the
     uninterrupted exports byte-for-byte. *)
  let meta = [ ("format", "1"); ("target", "apache"); ("seed", "7") ] in
  let exports ?checkpoint () =
    let result, _ =
      Pool.run ?checkpoint ~jobs:1 ~batch_size:8 ~sync_every:32 ~iterations:150
        (Config.fitness_guided ~seed:7 ())
        (Apache.space ())
        (Pool.Pure (Afex.Executor.of_target (Apache.target ())))
    in
    (Export.summary_to_json ~target:"apache" result, Export.records_to_csv result)
  in
  let base_json, base_csv = exports () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "afex_runtime_wm_%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let hooks =
        {
          Checkpoint.no_hooks with
          Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
        }
      in
      (match Checkpoint.start ~hooks ~every:25 ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          let crashed =
            match exports ~checkpoint:cp () with
            | _ -> false
            | exception Crash -> true
          in
          let s = Checkpoint.stats cp in
          Checkpoint.close cp;
          checkb "campaign crashed mid-flight" true crashed;
          checkb "a watermark snapshot was written before the crash" true
            (s.Checkpoint.snapshots_written >= 2));
      match Checkpoint.resume ~every:25 ~dir meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Fun.protect
            ~finally:(fun () -> Checkpoint.close cp)
            (fun () ->
              let json, csv = exports ~checkpoint:cp () in
              let s = Checkpoint.stats cp in
              checkb "resumed from the watermark snapshot, not the base" true
                (s.Checkpoint.replayed_records >= 1
                && s.Checkpoint.replayed_records <= 8);
              checks "JSON identical after watermark resume" base_json json;
              checks "CSV identical after watermark resume" base_csv csv))

(* --- golden trace replay ----------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_trace_replay () =
  (* The committed trace records the window sequence an adaptive run
     actually chose (wall-clock dependent, unreproducible from the seed);
     replaying it must keep producing the committed export bit-for-bit.
     Any drift in the mutator, the RNG stream, the reorder buffer's
     release order or the trace codec shows up as a byte diff against
     two files under version control. *)
  match Scheduler.Trace.load "golden/apache_adaptive_seed13.trace" with
  | Error e -> Alcotest.fail ("golden trace unreadable: " ^ e)
  | Ok trace ->
      checkb "golden trace has entries" true (trace <> []);
      let sched =
        Scheduler.create (Scheduler.Replay (Scheduler.Trace.windows trace))
      in
      let result, _ =
        Pool.run ~scheduler:sched ~jobs:1 ~iterations:80
          (Config.fitness_guided ~seed:13 ())
          (Apache.space ())
          (Pool.Pure (Afex.Executor.of_target (Apache.target ())))
      in
      let fresh = Export.summary_to_json ~target:"apache" result in
      let golden = read_file "golden/apache_adaptive_seed13.json" in
      checks "replayed export matches the golden file" golden fresh

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("prop: reorder release order", test_prop_reorder_release_order);
      ("prop: reorder rejects dup and stale", test_prop_reorder_rejects_dup_and_stale);
      ("reorder head-of-line gap", test_reorder_head_of_line_gap);
      ("reorder peek does not advance", test_reorder_peek_does_not_advance);
      ("reorder custom base sequence", test_reorder_custom_base);
      ("prop: deque matches model", test_prop_deque_matches_model);
      ("deque concurrent steal no loss", test_deque_concurrent_steal_no_loss);
      ("matrix: mysql", test_matrix_mysql);
      ("matrix: netsim", test_matrix_netsim);
      ("matrix: replsim", test_matrix_replsim);
      ("matrix: sequential leg", test_sequential_leg_matches_session_run);
      ("kill and resume at a watermark", test_kill_and_resume_at_watermark);
      ("golden trace replay", test_golden_trace_replay);
    ]
