(* Tests for the extensions beyond the paper's core evaluation: static
   analysis seeding, dynamic sigma, union-space search, precision
   assessment, result export, and compound spaces. *)

module Analyzer = Afex_simtarget.Analyzer
module Target = Afex_simtarget.Target
module Callsite = Afex_simtarget.Callsite
module Behavior = Afex_simtarget.Behavior
module Apache = Afex_simtarget.Apache
module Spaces = Afex_simtarget.Spaces
module Libc = Afex_simtarget.Libc
module Subspace = Afex_faultspace.Subspace
module Space = Afex_faultspace.Space
module Point = Afex_faultspace.Point
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Sensor = Afex_injector.Sensor
module Config = Afex.Config
module Session = Afex.Session
module Seeding = Afex.Seeding
module Assess = Afex.Assess
module Test_case = Afex.Test_case
module Export = Afex_report.Export

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* --- Analyzer --- *)

let test_analyzer_full_recall_full_precision () =
  let target = Apache.target () in
  let findings = Analyzer.analyze ~recall:1.0 ~precision:1.0 target in
  let fragile =
    Array.to_list (Target.callsites target)
    |> List.filter (fun (s : Callsite.t) ->
           not (Behavior.is_benign s.Callsite.behavior.Behavior.default))
  in
  checki "perfect analyzer finds exactly the fragile sites"
    (List.length fragile) (List.length findings);
  List.iter
    (fun (f : Analyzer.finding) ->
      let site = Target.callsite target f.Analyzer.site in
      checkb "flagged site is fragile" false
        (Behavior.is_benign site.Callsite.behavior.Behavior.default))
    findings

let test_analyzer_imperfect () =
  let target = Apache.target () in
  let perfect = List.length (Analyzer.analyze ~recall:1.0 ~precision:1.0 target) in
  let findings = Analyzer.analyze ~recall:0.5 ~precision:0.5 target in
  let true_positives =
    List.length
      (List.filter
         (fun (f : Analyzer.finding) ->
           let site = Target.callsite target f.Analyzer.site in
           not (Behavior.is_benign site.Callsite.behavior.Behavior.default))
         findings)
  in
  let fp = List.length findings - true_positives in
  checkb "misses some fragile sites" true (true_positives < perfect);
  checkb "has false positives" true (fp > 0)

let test_analyzer_deterministic () =
  let target = Apache.target () in
  let a = Analyzer.analyze ~seed:5 target and b = Analyzer.analyze ~seed:5 target in
  checkb "same findings for same seed" true (a = b)

let test_analyzer_reaching_injections () =
  let target = Apache.target () in
  let findings = Analyzer.analyze ~recall:1.0 ~precision:1.0 target in
  let finding =
    List.find
      (fun f -> Analyzer.reaching_injections target f <> [])
      findings
  in
  List.iter
    (fun (test_id, call_number) ->
      (* Injecting at the suggested coordinates must hit the flagged site. *)
      let fault = Fault.make ~test_id ~func:finding.Analyzer.func ~call_number () in
      let o = Engine.run target fault in
      checkb "suggested injection triggers" true o.Afex_injector.Outcome.triggered;
      match o.Afex_injector.Outcome.injection_stack with
      | Some stack ->
          let site = Target.callsite target finding.Analyzer.site in
          checkb "hits the flagged site" true (stack = Callsite.injection_stack site)
      | None -> Alcotest.fail "no injection stack")
    (List.filteri (fun i _ -> i < 5) (Analyzer.reaching_injections target finding))

(* --- Seeding --- *)

let test_seeding_points_valid () =
  let target = Apache.target () in
  let sub = Apache.space () in
  let findings = Analyzer.analyze ~recall:1.0 ~precision:1.0 target in
  let seeds = Seeding.points_for sub target findings ~max_seeds:25 in
  checki "respects budget" 25 (List.length seeds);
  List.iter (fun p -> checkb "in space" true (Subspace.mem sub p)) seeds;
  checki "no duplicates" 25
    (List.length (List.sort_uniq compare (List.map Point.key seeds)))

let test_seeding_executed_first () =
  let target = Apache.target () in
  let sub = Apache.space () in
  let findings = Analyzer.analyze ~recall:1.0 ~precision:1.0 target in
  let seeds = Seeding.points_for sub target findings ~max_seeds:10 in
  let config =
    { (Config.fitness_guided ~seed:9 ()) with Config.initial_seeds = seeds }
  in
  let r = Session.run ~iterations:10 config sub (Afex.Executor.of_target target) in
  let executed_keys = List.map (fun c -> Point.key c.Test_case.point) r.Session.executed in
  Alcotest.(check (list string))
    "the first iterations run the seeds in order"
    (List.map Point.key seeds) executed_keys

let test_seeding_improves_time_to_first_crash () =
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let findings = Analyzer.analyze ~recall:0.8 ~precision:0.7 target in
  let seeds = Seeding.points_for sub target findings ~max_seeds:40 in
  let first_crash config =
    let r = Session.run ~iterations:300 config sub executor in
    let rec scan i = function
      | [] -> max_int
      | c :: rest -> if Test_case.crashed c then i else scan (i + 1) rest
    in
    scan 1 r.Session.executed
  in
  let totals f = List.fold_left (fun acc s -> acc + f s) 0 [ 31; 32; 33 ] in
  let plain = totals (fun s -> first_crash (Config.fitness_guided ~seed:s ())) in
  let seeded =
    totals (fun s ->
        first_crash
          { (Config.fitness_guided ~seed:s ()) with Config.initial_seeds = seeds })
  in
  checkb
    (Printf.sprintf "seeded first-crash sum %d <= plain %d" seeded plain)
    true (seeded <= plain)

let test_seeding_invalid_points_skipped () =
  let sub = Apache.space () in
  let bogus = Point.of_list [ 999_999; 0; 0 ] in
  let config =
    { (Config.fitness_guided ~seed:4 ()) with Config.initial_seeds = [ bogus ] }
  in
  (* Must not raise: the invalid seed is skipped. *)
  let r =
    Session.run ~iterations:5 config sub (Afex.Executor.of_target (Apache.target ()))
  in
  checki "still ran the budget" 5 r.Session.iterations

(* --- Dynamic sigma --- *)

let test_dynamic_sigma_valid_mutations () =
  let sub = Apache.space () in
  let params = { Afex.Mutator.default_params with Afex.Mutator.dynamic_sigma = true } in
  let config =
    { (Config.fitness_guided ~seed:5 ()) with Config.strategy = Config.Fitness_guided params }
  in
  let r = Session.run ~iterations:300 config sub (Afex.Executor.of_target (Apache.target ())) in
  checki "completes the budget" 300 r.Session.iterations;
  checkb "still finds failures" true (r.Session.failed > 0)

(* --- Union-space search --- *)

let test_run_space_budget_split () =
  let description =
    "memory function : { malloc } errno : { ENOMEM } retval : { 0 } \
     testId : [ 0, 57 ] callNumber : [ 1, 6 ] ;\n\
     io function : { read } errno : { EINTR } retval : { -1 } \
     testId : [ 0, 57 ] callNumber : [ 1, 6 ] ;"
  in
  let space = Result.get_ok (Afex_faultspace.Fsdl.space_of_string description) in
  let executor = Afex.Executor.of_target (Apache.target ()) in
  let sr = Session.run_space ~iterations:200 (Config.fitness_guided ~seed:6 ()) space executor in
  checki "two subspaces" 2 (List.length sr.Session.per_subspace);
  checki "budget consumed" 200 sr.Session.total_iterations;
  (* Equal cardinalities -> equal shares. *)
  List.iter
    (fun (_, r) -> checki "even split" 100 r.Session.iterations)
    sr.Session.per_subspace;
  checkb "totals aggregate" true
    (sr.Session.total_failed
    = List.fold_left (fun acc (_, r) -> acc + r.Session.failed) 0 sr.Session.per_subspace)

let test_run_space_labels () =
  let description = "alpha x : [ 0, 3 ] ; beta x : [ 0, 3 ] ;" in
  let space = Result.get_ok (Afex_faultspace.Fsdl.space_of_string description) in
  (* A synthetic scenario executor that accepts any attributes. *)
  let executor =
    Afex.Executor.of_scenario_fn ~total_blocks:1 ~description:"null" (fun scenario ->
        let fault = Fault.make ~test_id:0 ~func:"x" ~call_number:0 () in
        ignore scenario;
        {
          Afex_injector.Outcome.fault;
          status = Afex_injector.Outcome.Passed;
          triggered = false;
          coverage = Afex_stats.Bitset.create 1;
          injection_stack = None;
          crash_stack = None;
          duration_ms = 1.0;
        })
  in
  let sr = Session.run_space ~iterations:8 (Config.random_search ~seed:1 ()) space executor in
  Alcotest.(check (list (option string)))
    "labels preserved" [ Some "alpha"; Some "beta" ]
    (List.map fst sr.Session.per_subspace)

(* --- Assess --- *)

let test_assess_deterministic_target () =
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let r = Session.run ~iterations:200 (Config.fitness_guided ~seed:8 ()) sub executor in
  let sensor = Sensor.standard () in
  let assessed = Assess.top_faults executor ~sensor ~trials:5 ~n:4 r in
  checki "four assessed" 4 (List.length assessed);
  List.iter
    (fun (_, p) ->
      checkb "deterministic executor -> infinite precision" true
        (Afex_quality.Precision.deterministic p))
    assessed

let test_assess_noisy_target () =
  let target = Apache.target () in
  let nondet = { Engine.rng = Afex_stats.Rng.create 3; dodge_probability = 0.5 } in
  let executor = Afex.Executor.of_target ~nondet target in
  let sensor = Sensor.standard () in
  (* A fault that crashes deterministically without noise. *)
  let scenario =
    Fault.to_scenario (Fault.make ~test_id:30 ~func:"strdup" ~call_number:1 ())
  in
  let p = Assess.impact_precision executor ~sensor ~trials:20 scenario in
  checkb "noise lowers precision" false (Afex_quality.Precision.deterministic p)

(* --- Export --- *)

let session_for_export =
  lazy
    (Session.run ~iterations:60
       (Config.fitness_guided ~seed:12 ())
       (Apache.space ())
       (Afex.Executor.of_target (Apache.target ())))

let test_export_csv_shape () =
  let r = Lazy.force session_for_export in
  let csv = Export.records_to_csv r in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  checki "header + one row per test" 61 (List.length lines);
  checkb "header fields" true (contains (List.hd lines) "status,triggered,impact");
  List.iteri
    (fun i line ->
      if i > 0 then
        checki
          (Printf.sprintf "row %d column count" i)
          13
          (List.length (String.split_on_char ',' line)))
    lines

let test_export_csv_escaping () =
  checks "plain" "abc" (Export.csv_escape "abc");
  checks "comma" "\"a,b\"" (Export.csv_escape "a,b");
  checks "quote doubled" "\"a\"\"b\"" (Export.csv_escape "a\"b")

let test_export_json_fields () =
  let r = Lazy.force session_for_export in
  let json = Export.summary_to_json ~target:"apache" r in
  List.iter
    (fun needle -> checkb ("json has " ^ needle) true (contains json needle))
    [
      "\"target\": \"apache\"";
      "\"strategy\": \"fitness-guided\"";
      "\"iterations\": 60";
      "\"sensitivity\": [";
      "\"failure_curve\": [";
    ]

let test_export_json_escape () =
  checks "quotes" "a\\\"b" (Export.json_escape "a\"b");
  checks "backslash" "a\\\\b" (Export.json_escape "a\\b");
  checks "newline" "a\\nb" (Export.json_escape "a\nb")

(* --- Compound spaces --- *)

let test_spaces_multi_shape () =
  let target = Apache.target () in
  let sub = Spaces.multi ~arms:2 ~min_call:1 ~max_call:6 ~funcs:Libc.standard19 target in
  checki "five axes" 5 (Subspace.dim sub);
  checks "arm2 function axis" "function2"
    (Afex_faultspace.Axis.name (Subspace.axis sub 3));
  checki "cardinality" (58 * 19 * 6 * 19 * 6) (Subspace.cardinality sub)

let test_spaces_multi_three_arms () =
  let target = Apache.target () in
  let sub = Spaces.multi ~arms:3 ~min_call:1 ~max_call:2 ~funcs:[ "read" ] target in
  checki "seven axes" 7 (Subspace.dim sub);
  checks "arm3 call axis" "callNumber3"
    (Afex_faultspace.Axis.name (Subspace.axis sub 6))

let test_multi_space_session_runs () =
  let target = Apache.target () in
  let sub = Apache.multi_space () in
  let executor = Afex.Executor.of_target_multi target in
  let r = Session.run ~iterations:150 (Config.fitness_guided ~seed:13 ()) sub executor in
  checki "budget consumed" 150 r.Session.iterations;
  checkb "finds failures" true (r.Session.failed > 0)

let test_latent_bug_only_multi () =
  let target = Apache.target () in
  let latent = Apache.latent_bug_stack () in
  (* Single-fault sweep of write injections over the reaching tests finds
     nothing... *)
  let single = ref 0 in
  for test_id = 0 to Target.n_tests target - 1 do
    for k = 1 to 8 do
      let o = Engine.run target (Fault.make ~test_id ~func:"write" ~call_number:k ()) in
      if o.Afex_injector.Outcome.crash_stack = Some latent then incr single
    done
  done;
  checki "invisible to single faults" 0 !single;
  (* ...but a compound scenario (an earlier handled fault + the write
     fault) crashes it. Construct one exactly: walk a reaching test's
     trace, pick the first Handled site before the latent site, and
     compute both call numbers. *)
  let latent_site = Apache.latent_log_site () in
  (* Pick a test that actually reaches the latent site (the planting is
     data-driven, so the reached window is not a fixed range). *)
  let test =
    Array.to_list (Target.tests target)
    |> List.find (fun (t : Afex_simtarget.Sim_test.t) ->
           Array.exists (fun site -> site = latent_site) t.Afex_simtarget.Sim_test.trace)
  in
  let counts = Hashtbl.create 8 in
  let first_arm = ref None and latent_arm = ref None in
  Array.iter
    (fun site_id ->
      let site = Target.callsite target site_id in
      let func = site.Callsite.func in
      let k = 1 + Option.value (Hashtbl.find_opt counts func) ~default:0 in
      Hashtbl.replace counts func k;
      if site_id = latent_site && !latent_arm = None then latent_arm := Some k;
      if
        !first_arm = None && !latent_arm = None
        && site.Callsite.behavior.Behavior.default = Behavior.Handled
        && not (String.equal func "write")
      then first_arm := Some (func, k))
    test.Afex_simtarget.Sim_test.trace;
  match !first_arm, !latent_arm with
  | Some (func, k), Some k_latent ->
      let mf =
        Afex_injector.Multifault.make ~test_id:test.Afex_simtarget.Sim_test.id
          ~arms:[ (func, k); ("write", k_latent) ]
      in
      let o = Afex_injector.Multifault.run target mf in
      checkb "reachable with two faults" true
        (o.Afex_injector.Outcome.crash_stack = Some latent)
  | _ -> Alcotest.fail "could not construct a compound scenario"


(* --- Netsim / Netfault (performance-impact injection) --- *)

module Netsim = Afex_simtarget.Netsim
module Netfault = Afex_injector.Netfault

let server = Netsim.httpd_like ()

let test_netsim_baseline () =
  Array.iteri
    (fun w _ ->
      let r = Netsim.baseline server ~workload:w in
      checki
        (Printf.sprintf "workload %d completes everything" w)
        r.Netsim.requests_attempted r.Netsim.requests_completed;
      checkb "positive throughput" true (r.Netsim.throughput_rps > 0.0);
      checkb "no abort" true (r.Netsim.aborted_connection = None))
    server.Netsim.workloads

let test_netsim_deterministic () =
  let a = Netsim.baseline server ~workload:1 and b = Netsim.baseline server ~workload:1 in
  checkb "same elapsed" true (a.Netsim.elapsed_ms = b.Netsim.elapsed_ms)

let find_connection ~fragile workload =
  let w = server.Netsim.workloads.(workload) in
  let conn =
    Array.to_list w.Netsim.connections
    |> List.find (fun (c : Netsim.connection) ->
           if fragile then c.Netsim.retry_limit = 0 else c.Netsim.retry_limit > 0)
  in
  conn.Netsim.conn_id

let test_netsim_drop_robust_connection_slows () =
  let workload = 0 in
  let connection = find_connection ~fragile:false workload in
  let base = Netsim.baseline server ~workload in
  let r =
    Netsim.run server ~drop:{ Netsim.workload; connection; packet = 0 } ~workload ()
  in
  checki "nothing lost" base.Netsim.requests_completed r.Netsim.requests_completed;
  checkb "retransmission costs time" true (r.Netsim.elapsed_ms > base.Netsim.elapsed_ms);
  checkb "throughput drops" true (r.Netsim.throughput_rps < base.Netsim.throughput_rps)

let test_netsim_drop_fragile_connection_aborts () =
  let workload = 0 in
  let connection = find_connection ~fragile:true workload in
  let base = Netsim.baseline server ~workload in
  let r =
    Netsim.run server ~drop:{ Netsim.workload; connection; packet = 0 } ~workload ()
  in
  checkb "requests lost" true (r.Netsim.requests_completed < base.Netsim.requests_completed);
  checkb "abort recorded" true (r.Netsim.aborted_connection = Some connection)

let test_netsim_out_of_range_drop_noop () =
  let base = Netsim.baseline server ~workload:2 in
  let r =
    Netsim.run server
      ~drop:{ Netsim.workload = 2; connection = 999; packet = 0 }
      ~workload:2 ()
  in
  checkb "hole is a no-op" true (r = base)

let test_netsim_bad_workload () =
  checkb "workload validated" true
    (try ignore (Netsim.run server ~workload:99 ()); false
     with Invalid_argument _ -> true)

let test_netfault_space_shape () =
  let sub = Netfault.space server in
  checki "three axes" 3 (Subspace.dim sub);
  checki "cardinality"
    (Array.length server.Netsim.workloads
    * Netsim.max_connections server * Netsim.max_packets server)
    (Subspace.cardinality sub)

let test_netfault_scenario_decode () =
  let scenario =
    [
      ("testId", Afex_faultspace.Value.Int 1);
      ("connection", Afex_faultspace.Value.Int 2);
      ("packet", Afex_faultspace.Value.Int 3);
    ]
  in
  (match Netfault.drop_of_scenario scenario with
  | Ok d ->
      checki "workload" 1 d.Netsim.workload;
      checki "connection" 2 d.Netsim.connection;
      checki "packet" 3 d.Netsim.packet
  | Error e -> Alcotest.fail e);
  checkb "missing attribute rejected" true
    (Result.is_error (Netfault.drop_of_scenario [ ("testId", Afex_faultspace.Value.Int 0) ]))

let test_netfault_run_statuses () =
  let run workload connection =
    Netfault.run_scenario server
      [
        ("testId", Afex_faultspace.Value.Int workload);
        ("connection", Afex_faultspace.Value.Int connection);
        ("packet", Afex_faultspace.Value.Int 0);
      ]
  in
  let robust = run 0 (find_connection ~fragile:false 0) in
  checkb "robust drop passes" true (robust.Afex_injector.Outcome.status = Afex_injector.Outcome.Passed);
  checkb "robust drop still triggers" true robust.Afex_injector.Outcome.triggered;
  let fragile = run 0 (find_connection ~fragile:true 0) in
  checkb "fragile drop fails" true
    (fragile.Afex_injector.Outcome.status = Afex_injector.Outcome.Test_failed);
  checkb "fragile covers fewer requests" true
    (Afex_stats.Bitset.count fragile.Afex_injector.Outcome.coverage
    < Afex_stats.Bitset.count robust.Afex_injector.Outcome.coverage)

let test_netfault_fault_encoding_roundtrip () =
  let drop = { Netsim.workload = 3; connection = 4; packet = 17 } in
  let o =
    Netfault.run_scenario server
      [
        ("testId", Afex_faultspace.Value.Int drop.Netsim.workload);
        ("connection", Afex_faultspace.Value.Int drop.Netsim.connection);
        ("packet", Afex_faultspace.Value.Int drop.Netsim.packet);
      ]
  in
  checkb "drop encodes through the fault" true
    (Netfault.drop_of_fault o.Afex_injector.Outcome.fault = drop)

let test_netfault_throughput_loss () =
  let fragile = find_connection ~fragile:true 0 in
  let loss f = Netfault.throughput_loss server f in
  let hurting =
    Fault.make ~test_id:0 ~func:"tcp_drop" ~call_number:0 ~errno:"EDROP" ~retval:fragile ()
  in
  checkb "fragile drop loses throughput" true (loss hurting > 0.0);
  let harmless =
    Fault.make ~test_id:0 ~func:"tcp_drop" ~call_number:9999 ~errno:"EDROP" ~retval:0 ()
  in
  checkb "hole loses nothing" true (loss harmless = 0.0)

let test_netfault_guided_search_finds_loss () =
  let sub = Netfault.space server in
  let executor =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Netfault.total_request_blocks server)
      ~description:"net" (Netfault.run_scenario server)
  in
  let sensor = Netfault.throughput_loss_sensor server in
  let run strategy =
    let config = { (strategy ()) with Config.sensor } in
    let r = Session.run ~iterations:250 config sub executor in
    List.fold_left
      (fun acc (c : Test_case.t) ->
        acc +. Netfault.throughput_loss server c.Test_case.fault)
      0.0 r.Session.executed
  in
  let fg = run (fun () -> Config.fitness_guided ~seed:77 ()) in
  let rnd = run (fun () -> Config.random_search ~seed:77 ()) in
  checkb
    (Printf.sprintf "guided loss %.0f >= random %.0f" fg rnd)
    true (fg >= rnd)


(* --- Burst drops (Subinterval axes end-to-end) --- *)

let test_burst_space_has_subinterval_axis () =
  let sub = Netfault.burst_space server in
  checki "three axes" 3 (Subspace.dim sub);
  match Afex_faultspace.Axis.kind (Subspace.axis sub 2) with
  | Afex_faultspace.Axis.Subinterval { lo; hi } ->
      checki "window lo" 0 lo;
      checki "window hi" (Netsim.max_packets server - 1) hi
  | Afex_faultspace.Axis.Symbols _ | Afex_faultspace.Axis.Range _ ->
      Alcotest.fail "expected a sub-interval axis"

let test_burst_scenario_roundtrip_through_subspace () =
  (* Every point of the window axis decodes to a valid inclusive window. *)
  let sub = Netfault.burst_space server in
  let rng = Afex_stats.Rng.create 55 in
  for _ = 1 to 200 do
    let p = Subspace.random_point rng sub in
    match Netfault.burst_of_scenario (Subspace.values sub p) with
    | Ok b ->
        let lo, hi = b.Netsim.window in
        checkb "valid window" true (0 <= lo && lo <= hi && hi < Netsim.max_packets server)
    | Error e -> Alcotest.fail e
  done

let test_burst_worse_than_single_drop () =
  (* A burst covering a packet is at least as damaging as dropping just
     that packet. *)
  let workload = 3 in
  let base = Netsim.baseline server ~workload in
  Array.iter
    (fun (conn : Netsim.connection) ->
      let connection = conn.Netsim.conn_id in
      let single =
        Netsim.run server ~drop:{ Netsim.workload; connection; packet = 0 } ~workload ()
      in
      let burst =
        Netsim.run server
          ~burst:{ Netsim.b_workload = workload; b_connection = connection; window = (0, 7) }
          ~workload ()
      in
      checkb "burst completes no more" true
        (burst.Netsim.requests_completed <= single.Netsim.requests_completed);
      checkb "single within baseline" true
        (single.Netsim.requests_completed <= base.Netsim.requests_completed))
    server.Netsim.workloads.(workload).Netsim.connections

let test_burst_exhausts_retry_budget () =
  (* A robust client (retry budget 3) survives a 1-packet drop but aborts
     when a burst loses 4+ packets of one request. *)
  let conn =
    { Netsim.conn_id = 0; packets_per_request = [| 6; 6 |]; retry_limit = 3 }
  in
  let w = { Netsim.id = 0; name = "w"; connections = [| conn |]; handler_ms = 1.0 } in
  let srv =
    { Netsim.name = "s"; workloads = [| w |]; per_packet_ms = 0.1; retransmit_ms = 1.0 }
  in
  let single =
    Netsim.run srv ~drop:{ Netsim.workload = 0; connection = 0; packet = 0 } ~workload:0 ()
  in
  checki "single drop retransmitted" 2 single.Netsim.requests_completed;
  let burst =
    Netsim.run srv
      ~burst:{ Netsim.b_workload = 0; b_connection = 0; window = (0, 3) }
      ~workload:0 ()
  in
  checki "burst aborts the connection" 0 burst.Netsim.requests_completed;
  checkb "abort recorded" true (burst.Netsim.aborted_connection = Some 0)

let test_burst_fault_encoding_roundtrip () =
  let b = { Netsim.b_workload = 2; b_connection = 3; window = (5, 11) } in
  let o =
    Netfault.run_burst_scenario server
      [
        ("testId", Afex_faultspace.Value.Int 2);
        ("connection", Afex_faultspace.Value.Int 3);
        ("window", Afex_faultspace.Value.Pair (5, 11));
      ]
  in
  (match Netfault.burst_of_fault o.Afex_injector.Outcome.fault with
  | Ok b' -> checkb "round-trip" true (b = b')
  | Error e -> Alcotest.fail e);
  checkb "non-burst fault rejected" true
    (Result.is_error
       (Netfault.burst_of_fault (Fault.make ~test_id:0 ~func:"read" ~call_number:1 ())))

let test_burst_search_end_to_end () =
  (* The explorer mutates Subinterval coordinates like any other axis. *)
  let sub = Netfault.burst_space server in
  let executor =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Netfault.total_request_blocks server)
      ~description:"bursts" (Netfault.run_burst_scenario server)
  in
  let config =
    { (Config.fitness_guided ~seed:66 ()) with
      Config.sensor = Netfault.burst_loss_sensor server }
  in
  let r = Session.run ~iterations:300 config sub executor in
  checki "budget consumed" 300 r.Session.iterations;
  checkb "finds damaging bursts" true (r.Session.failed > 0)

(* --- Netfault codec round-trip properties (Prop harness) --- *)

let arb_drop =
  Prop.map
    ~show:(fun (d : Netsim.drop) ->
      Printf.sprintf "drop{w=%d;c=%d;p=%d}" d.Netsim.workload d.Netsim.connection
        d.Netsim.packet)
    (fun ((w, c), p) -> { Netsim.workload = w; connection = c; packet = p })
    (Prop.pair
       (Prop.pair
          (Prop.int_range 0 (Array.length server.Netsim.workloads - 1))
          (Prop.int_range 0 (Netsim.max_connections server - 1)))
       (Prop.int_range 0 (Netsim.max_packets server - 1)))

let arb_burst =
  let pmax = Netsim.max_packets server - 1 in
  Prop.map
    ~show:(fun (b : Netsim.burst) ->
      let lo, hi = b.Netsim.window in
      Printf.sprintf "burst{w=%d;c=%d;window=[%d,%d]}" b.Netsim.b_workload
        b.Netsim.b_connection lo hi)
    (fun ((w, c), (a, b)) ->
      { Netsim.b_workload = w; b_connection = c; window = (min a b, max a b) })
    (Prop.pair
       (Prop.pair
          (Prop.int_range 0 (Array.length server.Netsim.workloads - 1))
          (Prop.int_range 0 (Netsim.max_connections server - 1)))
       (Prop.pair (Prop.int_range 0 pmax) (Prop.int_range 0 pmax)))

(* Binding order in a scenario is not significant; exercise a few. *)
let drop_scenario ~order (d : Netsim.drop) =
  let b =
    [
      ("testId", Afex_faultspace.Value.Int d.Netsim.workload);
      ("connection", Afex_faultspace.Value.Int d.Netsim.connection);
      ("packet", Afex_faultspace.Value.Int d.Netsim.packet);
    ]
  in
  match (order, b) with
  | 1, _ -> List.rev b
  | 2, [ t; c; p ] -> [ c; p; t ]
  | _ -> b

let burst_scenario (b : Netsim.burst) =
  let lo, hi = b.Netsim.window in
  [
    ("testId", Afex_faultspace.Value.Int b.Netsim.b_workload);
    ("connection", Afex_faultspace.Value.Int b.Netsim.b_connection);
    ("window", Afex_faultspace.Value.Pair (lo, hi));
  ]

let test_prop_drop_scenario_roundtrip () =
  Prop.check ~count:200 "drop_of_scenario inverts the binding encoding"
    (Prop.pair arb_drop (Prop.int_range 0 2))
    (fun (drop, order) ->
      Netfault.drop_of_scenario (drop_scenario ~order drop) = Ok drop)

let test_prop_drop_fault_roundtrip () =
  Prop.check ~count:60 "drop_of_fault inverts the outcome fault encoding" arb_drop
    (fun drop ->
      let o = Netfault.run_scenario server (drop_scenario ~order:0 drop) in
      Netfault.drop_of_fault o.Afex_injector.Outcome.fault = drop)

let test_prop_burst_scenario_roundtrip () =
  Prop.check ~count:200 "burst_of_scenario inverts the binding encoding" arb_burst
    (fun burst -> Netfault.burst_of_scenario (burst_scenario burst) = Ok burst)

let test_prop_burst_fault_roundtrip () =
  Prop.check ~count:60 "burst_of_fault inverts the outcome fault encoding" arb_burst
    (fun burst ->
      let o = Netfault.run_burst_scenario server (burst_scenario burst) in
      Netfault.burst_of_fault o.Afex_injector.Outcome.fault = Ok burst)

let test_prop_codec_namespaces_disjoint () =
  (* The inverse mismatch this property surfaced: bursts share the field
     layout (test_id, retval, call_number = window lo), so [drop_of_fault]
     used to silently fabricate a single-packet drop from a burst fault —
     and [throughput_loss] scored that fabricated drop. Both must reject
     the foreign encoding instead. *)
  Prop.check ~count:40 "burst faults do not decode as drops (and vice versa)"
    (Prop.pair arb_drop arb_burst)
    (fun (drop, burst) ->
      let drop_fault =
        (Netfault.run_scenario server (drop_scenario ~order:0 drop))
          .Afex_injector.Outcome.fault
      in
      let burst_fault =
        (Netfault.run_burst_scenario server (burst_scenario burst))
          .Afex_injector.Outcome.fault
      in
      let drop_rejected =
        match Netfault.drop_of_fault burst_fault with
        | exception Invalid_argument _ -> true
        | _ -> false
      in
      drop_rejected
      && Result.is_error (Netfault.burst_of_fault drop_fault)
      && Netfault.throughput_loss server burst_fault = 0.0)

(* --- Time-budget stop criterion --- *)

let test_time_budget_stops_session () =
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target (Apache.target ()) in
  (* Apache tests cost ~250 ms simulated each; 3 seconds of simulated time
     allow only a dozen or so tests. *)
  let r =
    Session.run ~time_budget_ms:3000.0 ~iterations:10_000
      (Config.fitness_guided ~seed:3 ())
      sub executor
  in
  checkb "stopped long before the iteration budget" true (r.Session.iterations < 100);
  checkb "budget respected up to one test" true
    (r.Session.simulated_ms < 3000.0 +. 2000.0)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("analyzer perfect", test_analyzer_full_recall_full_precision);
      ("analyzer imperfect", test_analyzer_imperfect);
      ("analyzer deterministic", test_analyzer_deterministic);
      ("analyzer reaching injections", test_analyzer_reaching_injections);
      ("seeding points valid", test_seeding_points_valid);
      ("seeding executed first", test_seeding_executed_first);
      ("seeding speeds first crash", test_seeding_improves_time_to_first_crash);
      ("seeding skips invalid points", test_seeding_invalid_points_skipped);
      ("dynamic sigma works", test_dynamic_sigma_valid_mutations);
      ("run_space budget split", test_run_space_budget_split);
      ("run_space labels", test_run_space_labels);
      ("assess deterministic", test_assess_deterministic_target);
      ("assess noisy", test_assess_noisy_target);
      ("export csv shape", test_export_csv_shape);
      ("export csv escaping", test_export_csv_escaping);
      ("export json fields", test_export_json_fields);
      ("export json escape", test_export_json_escape);
      ("spaces multi shape", test_spaces_multi_shape);
      ("spaces multi three arms", test_spaces_multi_three_arms);
      ("multi-space session runs", test_multi_space_session_runs);
      ("latent bug needs two faults", test_latent_bug_only_multi);
      ("netsim baseline", test_netsim_baseline);
      ("netsim deterministic", test_netsim_deterministic);
      ("netsim robust drop slows", test_netsim_drop_robust_connection_slows);
      ("netsim fragile drop aborts", test_netsim_drop_fragile_connection_aborts);
      ("netsim out-of-range drop is a hole", test_netsim_out_of_range_drop_noop);
      ("netsim bad workload", test_netsim_bad_workload);
      ("netfault space shape", test_netfault_space_shape);
      ("netfault scenario decode", test_netfault_scenario_decode);
      ("netfault run statuses", test_netfault_run_statuses);
      ("netfault fault encoding roundtrip", test_netfault_fault_encoding_roundtrip);
      ("netfault throughput loss", test_netfault_throughput_loss);
      ("netfault guided search finds loss", test_netfault_guided_search_finds_loss);
      ("burst space has subinterval axis", test_burst_space_has_subinterval_axis);
      ("burst scenario roundtrip", test_burst_scenario_roundtrip_through_subspace);
      ("burst worse than single drop", test_burst_worse_than_single_drop);
      ("burst exhausts retry budget", test_burst_exhausts_retry_budget);
      ("burst fault encoding roundtrip", test_burst_fault_encoding_roundtrip);
      ("burst search end-to-end", test_burst_search_end_to_end);
      ("prop drop scenario roundtrip", test_prop_drop_scenario_roundtrip);
      ("prop drop fault roundtrip", test_prop_drop_fault_roundtrip);
      ("prop burst scenario roundtrip", test_prop_burst_scenario_roundtrip);
      ("prop burst fault roundtrip", test_prop_burst_fault_roundtrip);
      ("prop codec namespaces disjoint", test_prop_codec_namespaces_disjoint);
      ("time budget stops session", test_time_budget_stops_session);
    ]
