(* Property-test sweep over the search core, on the Prop harness: the
   Gaussian mutator never leaves the axis domains, Q_priority's bounded
   invariants hold under arbitrary op sequences, History membership is
   insensitive to insertion order, and the pool's submission-order merge
   explores exactly the sequential history for random seeds and
   windows. Failures shrink to a minimal seed/window/op-list. *)

module Rng = Afex_stats.Rng
module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point
module Subspace = Afex_faultspace.Subspace
module Pqueue = Afex.Pqueue
module History = Afex.History
module Mutator = Afex.Mutator
module Sensitivity = Afex.Sensitivity
module Test_case = Afex.Test_case
module Session = Afex.Session
module Config = Afex.Config
module Pool = Afex_cluster.Pool
module Outcome = Afex_injector.Outcome
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)

let case ?(fitness = 1.0) point =
  {
    Test_case.point;
    fault = Afex_injector.Fault.make ~test_id:0 ~func:"read" ~call_number:1 ();
    status = Afex_injector.Outcome.Passed;
    triggered = true;
    impact = fitness;
    fitness;
    birth = 0;
    mutated_axis = None;
    injection_stack = None;
    crash_stack = None;
    new_blocks = 0;
    duration_ms = 0.1;
  }

(* --- Gaussian mutation stays inside the axis domains ---------------- *)

(* A random subspace described by its axis cardinalities (mixing ranges,
   symbol alphabets and subintervals), a parent inside it, and a seed for
   the mutation draw itself. *)
let arb_mutation_setup =
  let arb_cards = Prop.list ~max_length:5 (Prop.int_range 1 12) in
  Prop.(
    map
      ~shrink:(fun (cards, seed) ->
        List.map (fun cards' -> (cards', seed)) (arb_cards.shrink cards)
        @ List.map (fun seed' -> (cards, seed')) (shrink_int ~towards:0 seed))
      ~show:(fun (cards, seed) ->
        Printf.sprintf "cards=[%s] seed=%d"
          (String.concat ";" (List.map string_of_int cards))
          seed)
      (fun (cards, seed) -> (cards, seed))
      (pair arb_cards (int_range 0 10_000)))

let subspace_of_cards cards =
  let axis i card =
    match i mod 3 with
    | 0 -> Axis.range (Printf.sprintf "r%d" i) ~lo:0 ~hi:(card - 1)
    | 1 ->
        Axis.symbols
          (Printf.sprintf "s%d" i)
          (List.init card (Printf.sprintf "sym%d"))
    | _ -> Axis.subinterval (Printf.sprintf "i%d" i) ~lo:1 ~hi:card
  in
  Subspace.make (List.mapi axis cards)

let test_mutation_stays_in_bounds () =
  Prop.check ~count:150 "gaussian mutation respects axis domains"
    arb_mutation_setup (fun (cards, seed) ->
      let cards = if cards = [] then [ 3 ] else cards in
      let sub = subspace_of_cards cards in
      let rng = Rng.create seed in
      let sens = Sensitivity.create ~dims:(Subspace.dim sub) () in
      let parent = case (Subspace.random_point rng sub) in
      let ok = ref true in
      for _ = 1 to 20 do
        let offspring, axis =
          Mutator.mutate Mutator.default_params rng sub sens ~parent
        in
        ok :=
          !ok && Subspace.mem sub offspring && 0 <= axis
          && axis < Subspace.dim sub
      done;
      !ok)

(* --- Q_priority invariants under arbitrary op sequences ------------- *)

(* Ops are encoded as small ints so the harness can shrink a failing
   sequence: n mod 4 picks the operation, n / 4 its argument. *)
let arb_pqueue_ops =
  Prop.(pair (int_range 1 8) (list ~max_length:40 (int_range 0 399)))

let test_pqueue_invariants () =
  Prop.check ~count:150 "pqueue bounded invariants" arb_pqueue_ops
    (fun (capacity, ops) ->
      let q = Pqueue.create ~capacity in
      let rng = Rng.create 7 in
      let invariant () =
        Pqueue.size q <= Pqueue.capacity q
        && Pqueue.size q = List.length (Pqueue.elements q)
        && Pqueue.is_empty q = (Pqueue.size q = 0)
        && (Pqueue.is_empty q || Pqueue.mean_fitness q >= 0.0)
      in
      List.for_all
        (fun n ->
          let arg = n / 4 in
          (match n mod 4 with
          | 0 ->
              let fitness = float_of_int arg /. 10.0 in
              let size_before = Pqueue.size q in
              let victim =
                Pqueue.insert rng q
                  (case ~fitness (Point.of_list [ arg; 0; 0 ]))
              in
              (* an eviction happens exactly when the queue was full *)
              if size_before < capacity then assert (victim = None)
              else assert (victim <> None)
          | 1 ->
              let c =
                case ~fitness:(float_of_int arg) (Point.of_list [ arg; 1; 0 ])
              in
              ignore (Pqueue.insert ~policy:Pqueue.Drop_min rng q c)
          | 2 -> (
              match Pqueue.sample rng q with
              | None -> assert (Pqueue.is_empty q)
              | Some _ -> assert (not (Pqueue.is_empty q)))
          | _ ->
              let retired = Pqueue.age q ~decay:0.5 ~retire_below:0.2 in
              List.iter
                (fun (c : Test_case.t) -> assert (c.fitness < 0.2))
                retired);
          invariant ())
        ops)

(* --- History is insertion-order insensitive ------------------------- *)

let arb_points =
  Prop.list ~max_length:25
    (Prop.map
       ~show:(fun p -> Point.key p)
       (fun (a, (b, c)) -> Point.of_list [ a; b; c ])
       (Prop.pair (Prop.int_range 0 5)
          (Prop.pair (Prop.int_range 0 5) (Prop.int_range 0 5))))

let test_history_order_insensitive () =
  Prop.check ~count:150 "history membership ignores insertion order"
    arb_points (fun points ->
      let build order =
        let h = History.create () in
        List.iter (History.add h) order;
        h
      in
      let forward = build points and backward = build (List.rev points) in
      History.size forward = History.size backward
      && List.for_all
           (fun p -> History.mem forward p && History.mem backward p)
           points)

(* --- pool merge order equals sequential exploration ----------------- *)

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      (Point.key c.Test_case.point, Outcome.status_to_string c.Test_case.status,
       c.Test_case.fitness))
    r.Session.executed

let arb_seed_window = Prop.(pair (int_range 0 9999) (int_range 1 24))

let test_pool_merge_matches_sequential () =
  (* The pool's submission-order merge means the explored history is a
     function of (seed, window) alone — never of jobs. Spot-checked
     across the whole (seed, window) plane rather than at hand-picked
     values; a failure shrinks towards window 1, where the pool's
     schedule degenerates to Session.run's. *)
  Prop.check ~count:12 "pool history independent of jobs" arb_seed_window
    (fun (seed, window) ->
      let run jobs =
        let config = Config.fitness_guided ~seed () in
        let r, _ =
          Pool.run ~batch_size:window ~jobs ~iterations:60 config
            (Apache.space ())
            (Pool.Pure (Afex.Executor.of_target (Apache.target ())))
        in
        history r
      in
      run 1 = run 2)

let test_pool_window_one_is_sequential () =
  Prop.check ~count:8 "window 1 equals Session.run" (Prop.int_range 0 9999)
    (fun seed ->
      let config = Config.fitness_guided ~seed () in
      let sequential =
        Session.run ~iterations:50 config (Apache.space ())
          (Afex.Executor.of_target (Apache.target ()))
      in
      let pooled, _ =
        Pool.run ~batch_size:1 ~jobs:1 ~iterations:50 config (Apache.space ())
          (Pool.Pure (Afex.Executor.of_target (Apache.target ())))
      in
      history sequential = history pooled)

let test_shrinking_reports_minimal_ops () =
  (* Meta-check that a genuinely broken property over the op encoding
     shrinks to the smallest violating sequence, so pqueue regressions
     surface as one-op reproducers rather than 40-op dumps. *)
  match
    Prop.find_counterexample ~count:100 arb_pqueue_ops (fun (_, ops) ->
        List.for_all (fun n -> n mod 4 <> 3) ops)
  with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      let _, ops = f.Prop.shrunk in
      checkb "shrunk to a single offending op" true
        (List.length ops = 1 && List.for_all (fun n -> n mod 4 = 3) ops)

let suite =
  [
    Alcotest.test_case "mutation stays in bounds" `Quick
      test_mutation_stays_in_bounds;
    Alcotest.test_case "pqueue invariants" `Quick test_pqueue_invariants;
    Alcotest.test_case "history order insensitive" `Quick
      test_history_order_insensitive;
    Alcotest.test_case "pool merge matches sequential" `Slow
      test_pool_merge_matches_sequential;
    Alcotest.test_case "window 1 is sequential" `Slow
      test_pool_window_one_is_sequential;
    Alcotest.test_case "op shrinking is minimal" `Quick
      test_shrinking_reports_minimal_ops;
  ]
