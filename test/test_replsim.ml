(* The replicated consensus target and its injector adapter: baseline
   and churn behaviour, the planted correlated-fault deep bugs (and that
   no single fault reaches them), the ⟨round, replica, kind, peer⟩
   codecs, churn-schedule seeding, and bit-identical histories across
   the pool, the event loop, and a checkpoint/resume crash. *)

module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Subspace = Afex_faultspace.Subspace
module Point = Afex_faultspace.Point
module Value = Afex_faultspace.Value
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Pool = Afex_cluster.Pool
module Checkpoint = Afex_cluster.Checkpoint
module Export = Afex_report.Export
module Bitset = Afex_stats.Bitset

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* One small, fast cluster shared by most tests. *)
let cluster = Replsim.make ~n:7 ~rounds:160 ~seed:5 ()
let cfg = Replsim.config cluster

let executor c =
  Afex.Executor.of_scenario_fn ~total_blocks:(Replsim.total_blocks c)
    ~description:(Replfault.description c)
    (Replfault.run_scenario c)

let deep_case (c : Test_case.t) =
  match c.Test_case.crash_stack with
  | None -> false
  | Some frames ->
      List.exists
        (fun inv -> List.mem ("invariant:" ^ inv) frames)
        Replsim.deep_invariants

(* --- construction and baseline ---------------------------------------- *)

let test_make_validation () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Replsim.cluster) -> false
  in
  checkb "n < 3" true (rejects (fun () -> Replsim.make ~n:2 ()));
  checkb "rounds < 1" true (rejects (fun () -> Replsim.make ~rounds:0 ~n:5 ()));
  checkb "bad period" true
    (rejects (fun () -> Replsim.make ~churn_period:0 ~n:5 ()));
  checkb "quorum-starving churn" true
    (rejects (fun () -> Replsim.make ~churn_period:3 ~recovery_rounds:6 ~n:5 ()))

let test_baseline_sane () =
  let b = Replsim.baseline cluster in
  checkb "no violation under churn alone" true (b.Replsim.violation = None);
  checkb "not triggered without faults" false b.Replsim.triggered;
  checki "all rounds run" cfg.Replsim.rounds b.Replsim.rounds_run;
  checkb "commits track rounds" true
    (b.Replsim.commits > cfg.Replsim.rounds / 2
    && b.Replsim.commits <= cfg.Replsim.rounds);
  checkb "churn causes recoveries" true (b.Replsim.recoveries > 0);
  checkb "leader present most rounds" true
    (Array.to_list b.Replsim.leader_trace
    |> List.filter (fun l -> l >= 0)
    |> List.length > cfg.Replsim.rounds / 2)

let test_baseline_deterministic () =
  let c2 = Replsim.make ~n:7 ~rounds:160 ~seed:5 () in
  let b1 = Replsim.baseline cluster and b2 = Replsim.baseline c2 in
  checki "same commits" b1.Replsim.commits b2.Replsim.commits;
  checki "same elections" b1.Replsim.elections b2.Replsim.elections;
  checkb "same leader trace" true (b1.Replsim.leader_trace = b2.Replsim.leader_trace);
  checkb "same churn schedule" true
    (Replsim.churn_schedule cluster = Replsim.churn_schedule c2)

let test_churn_schedule_shape () =
  let events = Replsim.churn_schedule cluster in
  checkb "non-empty" true (events <> []);
  List.iter
    (fun (t, r) ->
      checkb "round multiple of period" true (t mod cfg.Replsim.churn_period = 0);
      checkb "replica in range" true (0 <= r && r < cfg.Replsim.n))
    events;
  checkb "chronological" true
    (List.sort (fun (a, _) (b, _) -> compare a b) events = events)

let test_out_of_range_faults_rejected () =
  let rejects f =
    match Replsim.run cluster ~faults:[ f ] with
    | exception Invalid_argument _ -> true
    | (_ : Replsim.run_result) -> false
  in
  checkb "round" true
    (rejects { Replsim.round = cfg.Replsim.rounds; replica = 0; kind = Kill; peer = 0 });
  checkb "replica" true
    (rejects { Replsim.round = 0; replica = cfg.Replsim.n; kind = Kill; peer = 0 });
  checkb "peer" true
    (rejects { Replsim.round = 0; replica = 0; kind = Kill; peer = -1 })

let test_kill_leader_forces_election () =
  let b = Replsim.baseline cluster in
  (* Pick a round with a settled leader and kill it. *)
  let t = 40 in
  let l = b.Replsim.leader_trace.(t - 1) in
  checkb "baseline has a leader at the probe round" true (l >= 0);
  let r =
    Replsim.run cluster
      ~faults:[ { Replsim.round = t; replica = l; kind = Kill; peer = 0 } ]
  in
  checkb "fault triggered" true r.Replsim.triggered;
  checkb "extra election held" true (r.Replsim.elections > b.Replsim.elections);
  checkb "single kill violates nothing" true (r.Replsim.violation = None)

(* --- the planted deep bugs -------------------------------------------- *)

(* Candidate correlated scenarios from the cluster's own structure, the
   same recipe the seeder uses; the tests then assert the bug fires for
   some candidate and that either arm alone is harmless. *)
let find_deep invariant recipes =
  let b = Replsim.baseline cluster in
  let leader_entering t =
    if t >= 1 && t < cfg.Replsim.rounds then b.Replsim.leader_trace.(t - 1) else -1
  in
  let candidates =
    List.concat_map
      (fun (t_c, r) ->
        List.concat_map
          (fun dt ->
            let t_k = t_c + dt in
            let t_stale = t_c - (2 * cfg.Replsim.backup_period) in
            if t_stale < 1 || t_k >= cfg.Replsim.rounds then []
            else
              let l = leader_entering t_k in
              if l < 0 || l = r || leader_entering (t_c + 1) <> l then []
              else recipes ~t_c ~t_k ~t_stale ~r ~l)
          [ 1; 2; 3; 4 ])
      (Replsim.churn_schedule cluster)
  in
  List.find_opt
    (fun faults ->
      match (Replsim.run cluster ~faults).Replsim.violation with
      | Some v -> v.Replsim.invariant = invariant
      | None -> false)
    candidates

let bug1_recipes ~t_c:_ ~t_k ~t_stale ~r ~l =
  [
    [
      { Replsim.round = t_stale; replica = r; kind = Stale_backup; peer = 0 };
      { Replsim.round = t_k; replica = l; kind = Kill; peer = 0 };
    ];
  ]

let bug2_recipes ~t_c ~t_k ~t_stale:_ ~r ~l =
  [
    [
      { Replsim.round = t_c + 1; replica = r; kind = Drop_acks; peer = l };
      { Replsim.round = t_k; replica = r; kind = Kill; peer = 0 };
    ];
  ]

let check_deep_bug name invariant site recipes =
  match find_deep invariant recipes with
  | None -> Alcotest.failf "%s: no candidate scenario violated %s" name invariant
  | Some faults -> (
      let r = Replsim.run cluster ~faults in
      match r.Replsim.violation with
      | None -> assert false
      | Some v ->
          checkb (name ^ " is deep") true (Replsim.is_deep v);
          checkb (name ^ " stable site") true (v.Replsim.site = site);
          checkb (name ^ " site has no coordinates") true
            (not
               (contains
                  (String.concat " " v.Replsim.site)
                  (Printf.sprintf "round %d" v.Replsim.v_round)));
          (* Either arm alone must be harmless: the bug needs the
             correlation, not just one strong fault. *)
          List.iter
            (fun f ->
              match (Replsim.run cluster ~faults:[ f ]).Replsim.violation with
              | Some v ->
                  Alcotest.failf "%s: single arm alone violated %s" name
                    v.Replsim.invariant
              | None -> ())
            faults)

let test_deep_bug_stale_revote () =
  check_deep_bug "stale-revote" "leader-uniqueness"
    [
      "recovery@replsim/election.c:88";
      "replsim:request_vote";
      "replsim:recover_rejoin";
      "invariant:leader-uniqueness";
    ]
    bug1_recipes

let test_deep_bug_recovery_crash () =
  check_deep_bug "recovery-crash" "recovery-crash"
    [
      "recovery@replsim/catchup.c:214";
      "replsim:catchup_abort";
      "replsim:recover_rejoin";
      "invariant:recovery-crash";
    ]
    bug2_recipes

let test_no_single_fault_reaches_deep () =
  (* Exhaustive over the whole single-arm space of a small cluster: every
     atomic fault, on every round, against every peer. *)
  let c = Replsim.make ~n:5 ~rounds:60 ~seed:3 () in
  let k = Replsim.config c in
  for round = 0 to k.Replsim.rounds - 1 do
    for replica = 0 to k.Replsim.n - 1 do
      List.iter
        (fun kind ->
          for peer = 0 to k.Replsim.n - 1 do
            match
              (Replsim.run c ~faults:[ { Replsim.round; replica; kind; peer } ])
                .Replsim.violation
            with
            | Some v when Replsim.is_deep v ->
                Alcotest.failf "single %s fault at (%d, %d, %d) violated %s"
                  (Replsim.kind_to_string kind)
                  round replica peer v.Replsim.invariant
            | _ -> ()
          done)
        Replsim.all_kinds
    done
  done

(* --- coverage blocks --------------------------------------------------- *)

let test_coverage_blocks_grade_the_search () =
  let b = Replsim.baseline cluster in
  let covered result rep block =
    Bitset.mem result.Replsim.coverage ((rep * Replsim.blocks_per_replica) + block)
  in
  (* Baseline covers the normal path and recovery entry/exit, but none of
     the fault-only blocks (indices from the documented layout). *)
  let b_recovery_overlap = 4 and b_kill_mid_recovery = 5 in
  checkb "baseline covers follower ack" true (covered b 1 0);
  checkb "baseline covers no overlap block" true
    (List.for_all
       (fun rep -> not (covered b rep b_recovery_overlap))
       (List.init cfg.Replsim.n (fun i -> i)));
  (* A kill inside a recovery window covers the overlap and mid-kill
     blocks — the gradient toward the correlated bugs. *)
  let t_c, rep = List.nth (Replsim.churn_schedule cluster) 2 in
  let r =
    Replsim.run cluster
      ~faults:[ { Replsim.round = t_c + 1; replica = rep; kind = Kill; peer = 0 } ]
  in
  checkb "kill-mid-recovery block covered" true (covered r rep b_kill_mid_recovery);
  checkb "overlap block covered" true (covered r rep b_recovery_overlap);
  checkb "strictly more blocks than baseline" true
    (Bitset.count r.Replsim.coverage > Bitset.count b.Replsim.coverage)

(* --- codecs ------------------------------------------------------------ *)

let arb_rfault =
  Prop.map
    ~show:(fun (rf : Replsim.fault) ->
      Printf.sprintf "{round=%d; replica=%d; kind=%s; peer=%d}" rf.Replsim.round
        rf.Replsim.replica
        (Replsim.kind_to_string rf.Replsim.kind)
        rf.Replsim.peer)
    (fun ((round, replica), (kind, peer)) -> { Replsim.round; replica; kind; peer })
    (Prop.pair
       (Prop.pair
          (Prop.int_range 0 (cfg.Replsim.rounds - 1))
          (Prop.int_range 0 (cfg.Replsim.n - 1)))
       (Prop.pair (Prop.choose Replsim.all_kinds) (Prop.int_range 0 (cfg.Replsim.n - 1))))

let test_prop_fault_embedding_roundtrip () =
  Prop.check ~count:200 "rfault_of_fault inverts fault_of_rfault" arb_rfault
    (fun rf -> Replfault.rfault_of_fault (Replfault.fault_of_rfault rf) = Ok rf)

let test_prop_scenario_codec_roundtrip () =
  Prop.check ~count:200 "faults_of_scenario inverts scenario_of_faults"
    (Prop.map
       ~show:(fun l -> string_of_int (List.length l) ^ " arms")
       (fun (a, l) -> a :: l)
       (Prop.pair arb_rfault (Prop.list ~max_length:3 arb_rfault)))
    (fun faults ->
      Replfault.faults_of_scenario (Replfault.scenario_of_faults faults) = Ok faults)

let test_kind_strings_roundtrip () =
  List.iter
    (fun k ->
      checkb (Replsim.kind_to_string k) true
        (Replsim.kind_of_string (Replsim.kind_to_string k) = Ok k))
    Replsim.all_kinds;
  checkb "unknown kind rejected" true
    (Result.is_error (Replsim.kind_of_string "reboot"))

let test_faults_of_scenario_errors () =
  let err s =
    match Replfault.faults_of_scenario s with
    | Error e -> e
    | Ok _ -> Alcotest.fail "expected decode error"
  in
  checks "empty scenario" "no fault arms" (err []);
  checks "attribute before any arm" "replica before any round"
    (err [ ("replica", Value.Int 1) ]);
  checks "suffixed attribute before any arm" "peer2 before any round"
    (err [ ("peer2", Value.Int 1) ]);
  checks "missing kind" "arm missing kind" (err [ ("round", Value.Int 3) ]);
  checks "unknown kind symbol" "unknown fault kind \"reboot\""
    (err [ ("round", Value.Int 3); ("kind", Value.Sym "reboot") ]);
  checks "unexpected attribute" "unexpected attribute errno"
    (err [ ("round", Value.Int 3); ("errno", Value.Sym "EIO") ]);
  checks "ill-typed round is unexpected" "unexpected attribute round"
    (err [ ("round", Value.Sym "three") ])

let test_rfault_of_fault_rejects_foreign () =
  let f = Fault.make ~test_id:0 ~func:"tcp_drop" ~call_number:1 ~errno:"EDROP" () in
  checkb "netfault encoding rejected" true
    (Result.is_error (Replfault.rfault_of_fault f));
  let g = Fault.make ~test_id:0 ~func:"repl_reboot" ~call_number:1 () in
  checkb "unknown kind rejected" true (Result.is_error (Replfault.rfault_of_fault g))

(* --- outcome mapping --------------------------------------------------- *)

let test_outcome_passed_on_harmless_fault () =
  (* A self-drop matches no real message: nothing triggers, nothing lost. *)
  let o =
    Replfault.run_scenario cluster
      (Replfault.scenario_of_faults
         [ { Replsim.round = 10; replica = 2; kind = Drop_acks; peer = 2 } ])
  in
  checkb "passes" true (o.Outcome.status = Outcome.Passed);
  checkb "not triggered" false o.Outcome.triggered;
  checkb "no crash stack" true (o.Outcome.crash_stack = None);
  checkb "not deep" false (Replfault.deep_outcome o)

let test_outcome_crashed_on_deep_violation () =
  match find_deep "leader-uniqueness" bug1_recipes with
  | None -> Alcotest.fail "no stale-revote candidate found"
  | Some faults ->
      let o = Replfault.run_scenario cluster (Replfault.scenario_of_faults faults) in
      checkb "crashed" true (o.Outcome.status = Outcome.Crashed);
      checkb "deep outcome" true (Replfault.deep_outcome o);
      checkb "crash stack is the violation site" true
        (match o.Outcome.crash_stack with
        | Some frames -> List.mem "invariant:leader-uniqueness" frames
        | None -> false);
      (* The attributed fault is the second (window) arm of the pair. *)
      let second =
        List.fold_left
          (fun best (rf : Replsim.fault) ->
            match best with
            | Some (b : Replsim.fault) when b.Replsim.round >= rf.Replsim.round ->
                best
            | _ -> Some rf)
          None faults
      in
      checkb "outcome fault is the window arm" true
        (Replfault.rfault_of_fault o.Outcome.fault = Ok (Option.get second))

let test_outcome_hung_on_liveness_violation () =
  (* Kill a majority in one round: no quorum, no commits, liveness trips
     before the recoveries return. *)
  let c = Replsim.make ~n:5 ~rounds:80 ~seed:3 ~liveness_k:4 () in
  let faults =
    List.map
      (fun replica -> { Replsim.round = 20; replica; kind = Replsim.Kill; peer = 0 })
      [ 0; 1; 2; 3 ]
  in
  let o = Replfault.run_scenario c (Replfault.scenario_of_faults faults) in
  checkb "hung" true (o.Outcome.status = Outcome.Hung);
  checkb "liveness is not deep" false (Replfault.deep_outcome o)

let test_outcome_test_failed_on_commit_loss () =
  (* An ack-drop storm against the leader across the end of the run: the
     quorum never re-forms in time, the appended tail stays uncommitted,
     and the run ends short of the baseline's commits — a failed test,
     not a violation. *)
  let c = Replsim.make ~n:5 ~rounds:80 ~seed:3 () in
  let b = Replsim.baseline c in
  let l = b.Replsim.leader_trace.(78) in
  let followers = List.filter (fun i -> i <> l) [ 0; 1; 2; 3; 4 ] in
  let faults =
    List.filteri (fun i _ -> i < 3) followers
    |> List.map (fun p ->
           { Replsim.round = 74; replica = l; kind = Replsim.Drop_acks; peer = p })
  in
  let o = Replfault.run_scenario c (Replfault.scenario_of_faults faults) in
  checkb "test failed" true (o.Outcome.status = Outcome.Test_failed);
  checkb "triggered" true o.Outcome.triggered;
  checkb "no crash stack" true (o.Outcome.crash_stack = None)

let test_commit_loss_sensor_values () =
  (* A correct consensus cluster masks any single fault: the same-round
     re-election after a leader kill loses nothing, so single-fault
     commit loss is zero across the board — the sensor's gradient comes
     from coverage and from compound scenarios. *)
  let b = Replsim.baseline cluster in
  let l = b.Replsim.leader_trace.(39) in
  let kill =
    Replfault.fault_of_rfault
      { Replsim.round = 40; replica = l; kind = Replsim.Kill; peer = 0 }
  in
  checkb "a single leader kill is masked" true
    (Replfault.commit_loss cluster kill = 0.0);
  let harmless =
    Replfault.fault_of_rfault
      { Replsim.round = 10; replica = 2; kind = Replsim.Drop_acks; peer = 2 }
  in
  checkb "harmless fault loses nothing" true
    (Replfault.commit_loss cluster harmless = 0.0);
  let foreign = Fault.make ~test_id:0 ~func:"malloc" ~call_number:1 () in
  checkb "foreign fault scores zero" true
    (Replfault.commit_loss cluster foreign = 0.0)

(* --- spaces and seeding ------------------------------------------------ *)

let test_space_shapes () =
  let single = Replfault.space cluster in
  checki "single-arm axes" 4 (Subspace.dim single);
  let multi = Replfault.multi_space ~arms:3 cluster in
  checki "three-arm axes" 12 (Subspace.dim multi);
  checkb "arms < 1 rejected" true
    (match Replfault.multi_space ~arms:0 cluster with
    | exception Invalid_argument _ -> true
    | (_ : Subspace.t) -> false)

let test_seed_points_well_formed () =
  let sub = Replfault.multi_space ~arms:2 cluster in
  let seeds = Replfault.seed_points ~arms:2 cluster in
  checkb "non-empty" true (seeds <> []);
  checkb "bounded" true (List.length seeds <= 400);
  let keys = List.map Point.key seeds in
  checki "deduplicated" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun p ->
      checki "point dim" (Subspace.dim sub) (Point.dim p);
      (* every coordinate decodes: the scenario parses into two arms *)
      match Replfault.faults_of_scenario (Subspace.values sub p) with
      | Ok faults -> checki "two arms" 2 (List.length faults)
      | Error e -> Alcotest.fail e)
    seeds;
  checkb "deterministic" true
    (List.map Point.key (Replfault.seed_points ~arms:2 cluster) = keys)

let test_seeded_guided_search_finds_deep_bug () =
  let sub = Replfault.multi_space ~arms:2 cluster in
  let seeds = Replfault.seed_points ~arms:2 cluster in
  let config =
    { (Config.fitness_guided ~seed:17 ()) with Config.initial_seeds = seeds }
  in
  let stop = { Session.matches = deep_case; count = 1 } in
  let r = Session.run ~stop ~iterations:2_000 config sub (executor cluster) in
  match r.Session.stop_iteration with
  | None -> Alcotest.fail "seeded guided search never reached a deep violation"
  | Some i ->
      checkb
        (Printf.sprintf "deep bug within the seed replay (TTFV %d <= %d)" i
           (List.length seeds))
        true
        (i <= List.length seeds)

(* --- determinism across execution paths (pool, event loop, resume) ----- *)

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      ( Point.key c.Test_case.point,
        Outcome.status_to_string c.Test_case.status,
        c.Test_case.fitness ))
    r.Session.executed

let small = Replsim.make ~n:6 ~rounds:120 ~seed:9 ()

let test_history_identical_across_jobs () =
  let run jobs =
    let r, _ =
      Pool.run ~jobs ~iterations:300
        (Config.fitness_guided ~seed:21 ())
        (Replfault.multi_space ~arms:2 small)
        (Pool.Pure (executor small))
    in
    history r
  in
  let h1 = run 1 in
  checkb "jobs 1 = jobs 4" true (h1 = run 4)

let test_history_identical_across_inflight () =
  let run inflight =
    let r, _ =
      Pool.run ~inflight ~jobs:1 ~iterations:300
        (Config.fitness_guided ~seed:21 ())
        (Replfault.multi_space ~arms:2 small)
        (Pool.Pure (executor small))
    in
    history r
  in
  let h1 = run 1 in
  checkb "inflight 1 = inflight 8" true (h1 = run 8)

exception Crash

let replsim_meta = [ ("format", "1"); ("target", "replsim"); ("seed", "33") ]

let session_exports ?checkpoint () =
  let result, _ =
    Pool.run ?checkpoint ~jobs:1 ~batch_size:8 ~iterations:150
      (Config.fitness_guided ~seed:33 ())
      (Replfault.multi_space ~arms:2 small)
      (Pool.Pure (executor small))
  in
  (Export.summary_to_json ~target:"replsim" result, Export.records_to_csv result)

let test_checkpoint_resume_mid_campaign () =
  let base_json, base_csv = session_exports () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "afex_replsim_ck_%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* Crash mid-campaign at the 40th journal append... *)
      let hooks =
        {
          Checkpoint.no_hooks with
          Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
        }
      in
      (match Checkpoint.start ~hooks ~every:25 ~dir replsim_meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          let crashed =
            match session_exports ~checkpoint:cp () with
            | _ -> false
            | exception Crash -> true
          in
          Checkpoint.close cp;
          checkb "campaign crashed mid-flight" true crashed);
      (* ... resume, and the exports must be byte-identical to an
         uninterrupted campaign. *)
      match Checkpoint.resume ~every:25 ~dir replsim_meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Fun.protect
            ~finally:(fun () -> Checkpoint.close cp)
            (fun () ->
              let json, csv = session_exports ~checkpoint:cp () in
              checks "JSON identical after resume" base_json json;
              checks "CSV identical after resume" base_csv csv))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
  [
    ("make validation", test_make_validation);
    ("baseline sane", test_baseline_sane);
    ("baseline deterministic", test_baseline_deterministic);
    ("churn schedule shape", test_churn_schedule_shape);
    ("out-of-range faults rejected", test_out_of_range_faults_rejected);
    ("kill leader forces election", test_kill_leader_forces_election);
    ("deep bug: stale revote", test_deep_bug_stale_revote);
    ("deep bug: recovery crash", test_deep_bug_recovery_crash);
    ("no single fault reaches deep", test_no_single_fault_reaches_deep);
    ("coverage blocks grade the search", test_coverage_blocks_grade_the_search);
    ("prop fault embedding roundtrip", test_prop_fault_embedding_roundtrip);
    ("prop scenario codec roundtrip", test_prop_scenario_codec_roundtrip);
    ("kind strings roundtrip", test_kind_strings_roundtrip);
    ("faults_of_scenario errors", test_faults_of_scenario_errors);
    ("foreign faults rejected", test_rfault_of_fault_rejects_foreign);
    ("outcome: passed", test_outcome_passed_on_harmless_fault);
    ("outcome: crashed deep", test_outcome_crashed_on_deep_violation);
    ("outcome: hung on liveness", test_outcome_hung_on_liveness_violation);
    ("outcome: failed on commit loss", test_outcome_test_failed_on_commit_loss);
    ("commit-loss sensor values", test_commit_loss_sensor_values);
    ("space shapes", test_space_shapes);
    ("seed points well-formed", test_seed_points_well_formed);
    ("seeded guided search finds deep bug", test_seeded_guided_search_finds_deep_bug);
    ("history identical across jobs", test_history_identical_across_jobs);
    ("history identical across inflight", test_history_identical_across_inflight);
    ("checkpoint/resume mid-campaign", test_checkpoint_resume_mid_campaign);
  ]
