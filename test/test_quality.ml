(* Tests for afex_quality: Levenshtein, clustering, precision, relevance,
   redundancy feedback. *)

module Lev = Afex_quality.Levenshtein
module Clustering = Afex_quality.Clustering
module Precision = Afex_quality.Precision
module Relevance = Afex_quality.Relevance
module Feedback = Afex_quality.Feedback

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Levenshtein --- *)

let test_lev_known_values () =
  checki "kitten/sitting" 3 (Lev.distance_strings "kitten" "sitting");
  checki "empty/abc" 3 (Lev.distance_strings "" "abc");
  checki "identical" 0 (Lev.distance_strings "stack" "stack")

let test_lev_frames () =
  let a = [| "libc.so:read"; "f (m.c:1)"; "main" |] in
  let b = [| "libc.so:close"; "f (m.c:1)"; "main" |] in
  checki "one substitution" 1 (Lev.distance a b);
  checki "insertion" 1 (Lev.distance a (Array.append [| "extra" |] a))

let test_lev_similarity_bounds () =
  let a = [| "x"; "y" |] and b = [| "p"; "q"; "r" |] in
  let s = Lev.similarity a b in
  checkb "in [0,1]" true (s >= 0.0 && s <= 1.0);
  checkf "identical similarity" 1.0 (Lev.similarity a a);
  checkf "empty traces similar" 1.0 (Lev.similarity [||] [||]);
  checkf "disjoint same-length" 0.0 (Lev.similarity [| "a"; "b" |] [| "c"; "d" |])

let test_lev_trace_helpers () =
  checki "list version" 1 (Lev.distance_traces [ "a"; "b" ] [ "a"; "c" ]);
  checkf "list similarity" 0.5 (Lev.similarity_traces [ "a"; "b" ] [ "a"; "c" ])

(* --- Clustering --- *)

let trace_id (t : string list) = t

let test_cluster_identical_merge () =
  let items = [ [ "a"; "b"; "c" ]; [ "a"; "b"; "c" ]; [ "x"; "y"; "z" ] ] in
  let clusters = Clustering.cluster ~trace:trace_id items in
  checki "two clusters" 2 (List.length clusters);
  let largest = List.hd clusters in
  checki "dupes merged" 2 (List.length largest.Clustering.members)

let test_cluster_near_traces_merge () =
  (* 1 differing frame of 4 = 0.25 <= threshold 0.34 *)
  let items = [ [ "a"; "b"; "c"; "d" ]; [ "a"; "b"; "c"; "e" ] ] in
  checki "near traces share cluster" 1 (Clustering.cluster_count ~trace:trace_id items)

let test_cluster_far_traces_split () =
  let items = [ [ "a"; "b"; "c"; "d" ]; [ "a"; "x"; "y"; "z" ] ] in
  checki "far traces split" 2 (Clustering.cluster_count ~trace:trace_id items)

let test_cluster_threshold_control () =
  let items = [ [ "a"; "b" ]; [ "a"; "c" ] ] in
  checki "strict threshold splits" 2
    (Clustering.cluster_count ~threshold:0.1 ~trace:trace_id items);
  checki "loose threshold merges" 1
    (Clustering.cluster_count ~threshold:0.6 ~trace:trace_id items)

let test_cluster_transitive_chaining () =
  (* A~B and B~C but A!~C: single linkage puts all three together. *)
  let a = [ "1"; "2"; "3"; "4" ] in
  let b = [ "1"; "2"; "3"; "x" ] in
  let c = [ "1"; "2"; "y"; "x" ] in
  checki "chained into one" 1 (Clustering.cluster_count ~threshold:0.26 ~trace:trace_id [ a; b; c ]);
  checki "a alone vs c" 2 (Clustering.cluster_count ~threshold:0.26 ~trace:trace_id [ a; c ])

let test_cluster_representative_first () =
  let items = [ [ "first" ]; [ "first" ] ] in
  let clusters = Clustering.cluster ~trace:trace_id items in
  Alcotest.(check (list string)) "representative" [ "first" ]
    (List.hd clusters).Clustering.representative

let test_cluster_empty () =
  checki "no items, no clusters" 0 (Clustering.cluster_count ~trace:trace_id [])

let test_cluster_sorted_by_size () =
  let items = [ [ "solo" ]; [ "dup" ]; [ "dup" ]; [ "dup" ] ] in
  match Clustering.cluster ~trace:trace_id items with
  | big :: small :: [] ->
      checki "largest first" 3 (List.length big.Clustering.members);
      checki "smaller second" 1 (List.length small.Clustering.members)
  | _ -> Alcotest.fail "expected two clusters"

let test_distinct_traces () =
  checki "distinct count" 2
    (Clustering.distinct_traces [ [ "a" ]; [ "a" ]; [ "b" ] ]);
  checki "empty" 0 (Clustering.distinct_traces [])

(* --- Interning, bounded distance, incremental index --- *)

module Trace_intern = Afex_quality.Trace_intern
module Index = Afex_quality.Index

let test_intern_ids_stable () =
  let intern = Trace_intern.create () in
  checki "first frame" 0 (Trace_intern.intern_frame intern "main");
  checki "second frame" 1 (Trace_intern.intern_frame intern "read");
  checki "repeat keeps id" 0 (Trace_intern.intern_frame intern "main");
  checki "distinct frames" 2 (Trace_intern.size intern);
  Alcotest.(check (list string))
    "round trip" [ "read"; "main" ]
    (Trace_intern.extern intern (Trace_intern.intern intern [ "read"; "main" ]))

let test_bounded_distance_cases () =
  let a = [| 1; 2; 3; 4 |] and b = [| 1; 2; 3; 9 |] in
  Alcotest.(check (option int)) "within budget" (Some 1) (Lev.distance_at_most ~k:1 a b);
  Alcotest.(check (option int)) "over budget" None (Lev.distance_at_most ~k:0 a b);
  Alcotest.(check (option int)) "identical at k=0" (Some 0) (Lev.distance_at_most ~k:0 a a);
  Alcotest.(check (option int)) "length gate" None (Lev.distance_at_most ~k:2 a [| 1 |]);
  Alcotest.(check (option int)) "empty vs empty" (Some 0) (Lev.distance_at_most ~k:0 [||] [||]);
  Alcotest.(check (option int)) "empty vs short" (Some 2) (Lev.distance_at_most ~k:2 [||] [| 5; 6 |]);
  checkb "negative k rejected" true
    (try ignore (Lev.distance_at_most ~k:(-1) a b); false
     with Invalid_argument _ -> true)

let test_bag_bound_cases () =
  let sorted l = let a = Array.of_list l in Array.sort compare a; a in
  checki "identical bags" 0 (Lev.bag_lower_bound (sorted [ 1; 2; 3 ]) (sorted [ 3; 2; 1 ]));
  checki "disjoint bags" 3 (Lev.bag_lower_bound (sorted [ 1; 2; 3 ]) (sorted [ 4; 5; 6 ]));
  checki "length difference" 2 (Lev.bag_lower_bound (sorted [ 1 ]) (sorted [ 1; 2; 3 ]));
  checki "one side empty" 4 (Lev.bag_lower_bound (sorted []) (sorted [ 7; 7; 8; 9 ]))

let observe_all index traces = List.iter (Index.observe index) traces

let test_index_online_counts () =
  let index = Index.create ~intern:(Trace_intern.create ()) () in
  checki "empty length" 0 (Index.length index);
  checki "empty clusters" 0 (Index.cluster_count index);
  observe_all index [ [ "a"; "b"; "c" ]; [ "a"; "b"; "c" ]; [ "x"; "y"; "z" ] ];
  checki "three observed" 3 (Index.length index);
  checki "two distinct" 2 (Index.distinct index);
  checki "two clusters" 2 (Index.cluster_count index);
  (* near trace (1 of 4 differing <= 0.34) merges online *)
  observe_all index [ [ "a"; "b"; "c"; "d" ] ];
  checki "near trace joins" 2 (Index.cluster_count index)

let test_index_cluster_shape () =
  let index = Index.create ~intern:(Trace_intern.create ()) () in
  observe_all index [ [ "solo" ]; [ "dup" ]; [ "dup" ]; [ "dup" ] ];
  (match Index.clusters index with
  | [ big; small ] ->
      Alcotest.(check (list int)) "largest first, insertion order" [ 1; 2; 3 ] big;
      Alcotest.(check (list int)) "singleton second" [ 0 ] small
  | _ -> Alcotest.fail "expected two clusters");
  Alcotest.(check (list int)) "representatives" [ 1; 0 ] (Index.representatives index)

let test_index_transitive_chain () =
  (* A~B and B~C but A!~C: single linkage links all three, even though C
     arrives after the A/B cluster is formed. *)
  let index = Index.create ~threshold:0.26 ~intern:(Trace_intern.create ()) () in
  observe_all index
    [ [ "1"; "2"; "3"; "4" ]; [ "1"; "2"; "3"; "x" ]; [ "1"; "2"; "y"; "x" ] ];
  checki "chained into one" 1 (Index.cluster_count index)

(* --- Precision --- *)

let test_precision_deterministic () =
  let p = Precision.measure ~trials:5 (fun () -> 42.0) in
  checkb "deterministic" true (Precision.deterministic p);
  checkf "mean" 42.0 p.Precision.mean_impact;
  checkb "infinite precision" true (p.Precision.precision = infinity)

let test_precision_noisy () =
  let counter = ref 0 in
  let p =
    Precision.measure ~trials:4 (fun () ->
        incr counter;
        if !counter mod 2 = 0 then 10.0 else 20.0)
  in
  checkb "not deterministic" false (Precision.deterministic p);
  checkf "mean" 15.0 p.Precision.mean_impact;
  (* variance of {20,10,20,10} with n-1 = 100/3 *)
  checkb "precision = 1/var" true
    (Float.abs (p.Precision.precision -. (3.0 /. 100.0)) < 1e-9)

let test_precision_requires_trials () =
  checkb "trials >= 1 enforced" true
    (try ignore (Precision.measure ~trials:0 (fun () -> 0.0)); false
     with Invalid_argument _ -> true)

(* --- Relevance --- *)

let test_relevance_uniform () =
  checkf "uniform weight" 1.0 (Relevance.weight Relevance.uniform "anything")

let test_relevance_weights_and_default () =
  let m = Relevance.of_weights ~default:0.1 [ ("malloc", 0.4); ("read", 0.5) ] in
  checkf "listed" 0.4 (Relevance.weight m "malloc");
  checkf "default" 0.1 (Relevance.weight m "write");
  checkf "scaled impact" 5.0 (Relevance.scale_impact m ~func:"read" 10.0)

let test_relevance_normalized () =
  let m = Relevance.of_weights [ ("a", 1.0); ("b", 3.0) ] in
  Alcotest.(check (list (pair string (float 1e-9))))
    "normalized" [ ("a", 0.25); ("b", 0.75) ] (Relevance.normalized m)

let test_relevance_negative_rejected () =
  checkb "negative rejected" true
    (try ignore (Relevance.of_weights [ ("x", -0.5) ]); false
     with Invalid_argument _ -> true)

(* --- Feedback --- *)

let test_feedback_initial_weight () =
  let fb = Feedback.create () in
  checkf "nothing seen -> full weight" 1.0 (Feedback.weight fb [ "a"; "b" ]);
  checki "seen 0" 0 (Feedback.seen fb)

let test_feedback_exact_repeat_zeroed () =
  let fb = Feedback.create () in
  Feedback.register fb [ "a"; "b"; "c" ];
  checkf "exact repeat zeroed" 0.0 (Feedback.weight fb [ "a"; "b"; "c" ]);
  checki "seen 1" 1 (Feedback.seen fb)

let test_feedback_partial_similarity () =
  let fb = Feedback.create () in
  Feedback.register fb [ "a"; "b"; "c"; "d" ];
  (* 1 differing frame of 4 -> similarity .75 -> weight .25 *)
  checkf "partial weight" 0.25 (Feedback.weight fb [ "a"; "b"; "c"; "x" ]);
  (* A dissimilar trace keeps most weight. *)
  checkb "dissimilar keeps weight" true (Feedback.weight fb [ "p"; "q" ] > 0.7)

let test_feedback_weigh_fitness () =
  let fb = Feedback.create () in
  let f1 = Feedback.weigh_fitness fb ~trace:(Some [ "s1"; "s2" ]) 10.0 in
  checkf "first occurrence unweighted" 10.0 f1;
  let f2 = Feedback.weigh_fitness fb ~trace:(Some [ "s1"; "s2" ]) 10.0 in
  checkf "second occurrence zeroed" 0.0 f2;
  checkf "untriggered passes through" 7.0 (Feedback.weigh_fitness fb ~trace:None 7.0)

let test_feedback_duplicates_collapsed () =
  let fb = Feedback.create () in
  Feedback.register fb [ "x" ];
  Feedback.register fb [ "x" ];
  checki "collapsed" 1 (Feedback.seen fb)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  let frame_gen = Gen.oneofl [ "a"; "b"; "c"; "d" ] in
  let trace_gen = Gen.(list_size (int_bound 6) frame_gen) in
  [
    Test.make ~name:"levenshtein symmetry" (Gen.pair trace_gen trace_gen)
      (fun (a, b) -> Lev.distance_traces a b = Lev.distance_traces b a);
    Test.make ~name:"levenshtein identity" trace_gen (fun t ->
        Lev.distance_traces t t = 0);
    Test.make ~name:"levenshtein triangle"
      (Gen.triple trace_gen trace_gen trace_gen)
      (fun (a, b, c) ->
        Lev.distance_traces a c <= Lev.distance_traces a b + Lev.distance_traces b c);
    Test.make ~name:"levenshtein bounded by max length"
      (Gen.pair trace_gen trace_gen)
      (fun (a, b) ->
        Lev.distance_traces a b <= max (List.length a) (List.length b));
    Test.make ~name:"cluster count bounded by distinct traces"
      (Gen.list_size (Gen.int_bound 12) trace_gen)
      (fun traces ->
        Clustering.cluster_count ~trace:(fun t -> t) traces
        <= max 1 (Clustering.distinct_traces traces)
        || traces = []);
  ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("levenshtein known values", test_lev_known_values);
      ("levenshtein frames", test_lev_frames);
      ("levenshtein similarity bounds", test_lev_similarity_bounds);
      ("levenshtein trace helpers", test_lev_trace_helpers);
      ("cluster identical merge", test_cluster_identical_merge);
      ("cluster near traces merge", test_cluster_near_traces_merge);
      ("cluster far traces split", test_cluster_far_traces_split);
      ("cluster threshold control", test_cluster_threshold_control);
      ("cluster transitive chaining", test_cluster_transitive_chaining);
      ("cluster representative first", test_cluster_representative_first);
      ("cluster empty", test_cluster_empty);
      ("cluster sorted by size", test_cluster_sorted_by_size);
      ("distinct traces", test_distinct_traces);
      ("intern ids stable", test_intern_ids_stable);
      ("bounded distance cases", test_bounded_distance_cases);
      ("bag bound cases", test_bag_bound_cases);
      ("index online counts", test_index_online_counts);
      ("index cluster shape", test_index_cluster_shape);
      ("index transitive chain", test_index_transitive_chain);
      ("precision deterministic", test_precision_deterministic);
      ("precision noisy", test_precision_noisy);
      ("precision requires trials", test_precision_requires_trials);
      ("relevance uniform", test_relevance_uniform);
      ("relevance weights/default", test_relevance_weights_and_default);
      ("relevance normalized", test_relevance_normalized);
      ("relevance negative rejected", test_relevance_negative_rejected);
      ("feedback initial weight", test_feedback_initial_weight);
      ("feedback exact repeat zeroed", test_feedback_exact_repeat_zeroed);
      ("feedback partial similarity", test_feedback_partial_similarity);
      ("feedback weigh_fitness", test_feedback_weigh_fitness);
      ("feedback duplicates collapsed", test_feedback_duplicates_collapsed);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
