(* A minimal property-based testing harness over the repo's own seeded
   splittable RNG: generators, greedy shrinking, and an Alcotest-friendly
   check loop. Deliberately tiny — the point is that codec round-trip
   tests report a *minimal* counterexample with the seed to replay it,
   instead of "case 73 of 200 failed" with a screenful of record. *)

module Rng = Afex_stats.Rng

type 'a arb = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list;  (* strictly "smaller" candidates, best first *)
  show : 'a -> string;
}

let make ?(shrink = fun _ -> []) ?(show = fun _ -> "<opaque>") gen =
  { gen; shrink; show }

(* ---- primitive generators -------------------------------------------- *)

let shrink_int ~towards n =
  if n = towards then []
  else begin
    let deltas = [ towards; towards + ((n - towards) / 2); n - compare n towards ] in
    List.sort_uniq compare (List.filter (fun c -> c <> n) deltas)
  end

let int_range lo hi =
  if hi < lo then invalid_arg "Prop.int_range: empty range";
  {
    gen = (fun rng -> lo + Rng.int rng (hi - lo + 1));
    shrink =
      (fun n ->
        let towards = if lo <= 0 && 0 <= hi then 0 else lo in
        shrink_int ~towards n);
    show = string_of_int;
  }

let float_range lo hi =
  if hi < lo then invalid_arg "Prop.float_range: empty range";
  {
    gen = (fun rng -> lo +. Rng.float rng (hi -. lo));
    shrink =
      (fun x ->
        let towards = if lo <= 0.0 && 0.0 <= hi then 0.0 else lo in
        if x = towards then []
        else
          List.filter
            (fun c -> c <> x && lo <= c && c <= hi)
            [ towards; (x +. towards) /. 2.0 ]);
    show = string_of_float;
  }

let bool =
  {
    gen = (fun rng -> Rng.bernoulli rng 0.5);
    shrink = (fun b -> if b then [ false ] else []);
    show = string_of_bool;
  }

let choose values =
  match values with
  | [] -> invalid_arg "Prop.choose: no values"
  | first :: _ ->
      let arr = Array.of_list values in
      {
        gen = (fun rng -> arr.(Rng.int rng (Array.length arr)));
        (* shrink towards the head of the list: put "boring" first *)
        shrink = (fun v -> if v == first || v = first then [] else [ first ]);
        show = (fun _ -> "<choice>");
      }

let map ?shrink ~show f arb_x =
  (* Without an inverse we cannot reuse [arb_x]'s shrinker. *)
  {
    gen = (fun rng -> f (arb_x.gen rng));
    shrink = (match shrink with Some s -> s | None -> fun _ -> []);
    show;
  }

let pair a b =
  {
    gen = (fun rng -> (a.gen rng, b.gen rng));
    shrink =
      (fun (x, y) ->
        List.map (fun x' -> (x', y)) (a.shrink x)
        @ List.map (fun y' -> (x, y')) (b.shrink y));
    show = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.show x) (b.show y));
  }

let list ?(max_length = 10) elt =
  if max_length < 0 then invalid_arg "Prop.list: negative max length";
  let show l = "[" ^ String.concat "; " (List.map elt.show l) ^ "]" in
  let rec drop_each prefix = function
    | [] -> []
    | x :: rest ->
        List.rev_append prefix rest :: drop_each (x :: prefix) rest
  in
  let shrink l =
    match l with
    | [] -> []
    | _ ->
        (* First try structurally smaller lists (drop one element), then
           shrink elements in place. *)
        drop_each [] l
        @ List.concat
            (List.mapi
               (fun i x ->
                 List.map
                   (fun x' -> List.mapi (fun j y -> if i = j then x' else y) l)
                   (elt.shrink x))
               l)
  in
  {
    gen =
      (fun rng ->
        let n = Rng.int rng (max_length + 1) in
        List.init n (fun _ -> elt.gen rng));
    shrink;
    show;
  }

(* ---- the check loop -------------------------------------------------- *)

type 'a failure = { seed : int; case : int; original : 'a; shrunk : 'a; steps : int }

let max_shrink_steps = 1000

let shrink_failure arb prop original =
  let steps = ref 0 in
  let rec go current =
    if !steps >= max_shrink_steps then current
    else
      match
        List.find_opt
          (fun candidate ->
            incr steps;
            not (try prop candidate with _ -> false))
          (arb.shrink current)
      with
      | Some smaller -> go smaller
      | None -> current
  in
  let shrunk = go original in
  (shrunk, !steps)

let find_counterexample ?(count = 200) ?(seed = 0xC0FFEE) arb prop =
  let master = Rng.create seed in
  let rec go case =
    if case >= count then None
    else begin
      let rng = Rng.split master in
      let value = arb.gen rng in
      let ok = try prop value with _ -> false in
      if ok then go (case + 1)
      else begin
        let shrunk, steps = shrink_failure arb prop value in
        Some { seed; case; original = value; shrunk; steps }
      end
    end
  in
  go 0

let check ?count ?seed name arb prop =
  match find_counterexample ?count ?seed arb prop with
  | None -> ()
  | Some f ->
      Alcotest.failf
        "property %S falsified (seed %d, case %d, %d shrink steps)@.  shrunk \
         counterexample: %s@.  original: %s"
        name f.seed f.case f.steps (arb.show f.shrunk) (arb.show f.original)
