(* Tests for the remote-dispatch stack: frame codec, socketpair transport,
   wire message codecs, the remote-manager proxy/server pair, and the
   chaos (transport fault injection) harness — a fault-injection tool's
   own transport gets tested under injected faults. *)

module Transport = Afex_cluster.Transport
module Message = Afex_cluster.Message
module RM = Afex_cluster.Remote_manager
module Node_manager = Afex_cluster.Node_manager
module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Point = Afex_faultspace.Point
module Scenario = Afex_faultspace.Scenario
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset
module Rng = Afex_stats.Rng
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let get_ok label = function
  | Ok v -> v
  | Error _ -> Alcotest.failf "%s: unexpected Error" label

let is_error = function Error _ -> true | Ok _ -> false
let executor () = Afex.Executor.of_target (Apache.target ())

(* Valid scenarios for the apache target, deterministically sampled. *)
let sample_scenarios n =
  let exec = executor () in
  let explorer =
    Afex.Explorer.create (Config.random_search ~seed:99 ()) (Apache.space ()) exec
  in
  List.init n (fun _ ->
      match Afex.Explorer.next explorer with
      | Some p -> Afex.Explorer.scenario_for explorer p
      | None -> Alcotest.fail "sample_scenarios: space exhausted")

let outcome_equal (a : Outcome.t) (b : Outcome.t) =
  Fault.equal a.Outcome.fault b.Outcome.fault
  && a.Outcome.status = b.Outcome.status
  && a.Outcome.triggered = b.Outcome.triggered
  && Bitset.equal a.Outcome.coverage b.Outcome.coverage
  && a.Outcome.injection_stack = b.Outcome.injection_stack
  && a.Outcome.crash_stack = b.Outcome.crash_stack
  && a.Outcome.duration_ms = b.Outcome.duration_ms

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      (Point.key c.Test_case.point, Outcome.status_to_string c.Test_case.status,
       c.Test_case.fitness))
    r.Session.executed

(* --- the frame codec --- *)

let decode_all bytes =
  let d = Transport.Frame.create () in
  Transport.Frame.feed d bytes;
  let rec go acc =
    match Transport.Frame.next d with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match decode_all (Transport.Frame.encode payload) with
      | Ok [ p ] -> checks "payload" payload p
      | Ok _ -> Alcotest.fail "expected exactly one frame"
      | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e))
    [
      "";
      "x";
      "hello world\n";
      String.init 256 Char.chr;
      String.make 100_000 'A';
    ]

let test_frame_incremental () =
  (* One byte at a time: the decoder must tolerate any stream chunking. *)
  let payload = "RESULT 7 P T 0 0x1p-3 \xc3\xa9" in
  let bytes = Transport.Frame.encode payload in
  let d = Transport.Frame.create () in
  let got = ref None in
  String.iter
    (fun c ->
      Transport.Frame.feed d (String.make 1 c);
      match Transport.Frame.next d with
      | Ok (Some p) -> got := Some p
      | Ok None -> ()
      | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e))
    bytes;
  checks "payload survives byte-wise delivery" payload
    (Option.value ~default:"<none>" !got);
  checki "nothing left over" 0 (Transport.Frame.pending d)

let test_frame_multiple_per_feed () =
  let payloads = [ "a"; ""; "third frame"; String.make 999 'z' ] in
  let bytes = String.concat "" (List.map Transport.Frame.encode payloads) in
  match decode_all bytes with
  | Ok got -> checkb "all frames decoded in order" true (got = payloads)
  | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e)

let test_frame_bad_magic () =
  (match decode_all "XYZW garbage" with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "garbage must be Corrupt");
  (* Right first byte, wrong second: still caught. *)
  let bytes = Transport.Frame.encode "ok" in
  let broken = Bytes.of_string bytes in
  Bytes.set broken 1 'Z';
  match decode_all (Bytes.to_string broken) with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "bad second magic byte must be Corrupt"

let test_frame_oversized () =
  (* A garbage length prefix must fail fast, not trigger a huge read. *)
  let b = Buffer.create 16 in
  Buffer.add_string b "AF";
  Buffer.add_string b "\x7f\xff\xff\xff";
  Buffer.add_string b "\x00\x00\x00\x00";
  (match decode_all (Buffer.contents b) with
  | Error (Transport.Frame_too_large _) -> ()
  | _ -> Alcotest.fail "oversized declared length must be Frame_too_large");
  checkb "encode rejects oversized payloads" true
    (try
       ignore (Transport.Frame.encode (String.make (Transport.max_frame + 1) 'x'));
       false
     with Invalid_argument _ -> true);
  let a, b' = Transport.pair () in
  (match a.Transport.send (String.make (Transport.max_frame + 1) 'x') with
  | Error (Transport.Frame_too_large _) -> ()
  | _ -> Alcotest.fail "send of an oversized payload must be a typed error");
  a.Transport.close ();
  b'.Transport.close ()

let test_frame_checksum () =
  let bytes = Bytes.of_string (Transport.Frame.encode "checksummed payload") in
  (* Flip one payload bit. *)
  let i = Bytes.length bytes - 3 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
  match decode_all (Bytes.to_string bytes) with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "bit flip must be a checksum mismatch"

(* --- the socketpair transport --- *)

let test_pair_roundtrip () =
  let a, b = Transport.pair () in
  let messages =
    [ "plain"; ""; "newline\nin the middle"; "non-ASCII: r\xc3\xa9seau \xf0\x9f\x90\xab" ]
  in
  List.iter
    (fun m ->
      (match a.Transport.send m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
      checks "a -> b" m (get_ok "recv" (b.Transport.recv ())))
    messages;
  (match b.Transport.send "the other way" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  checks "b -> a" "the other way" (get_ok "recv" (a.Transport.recv ()));
  a.Transport.close ();
  b.Transport.close ()

let test_recv_timeout () =
  let a, b = Transport.pair ~recv_timeout_ms:30 () in
  (match a.Transport.recv () with
  | Error Transport.Timeout -> ()
  | _ -> Alcotest.fail "silent peer must be Timeout, not a hang");
  a.Transport.close ();
  b.Transport.close ()

let test_closed_and_truncated_peer () =
  let a, b = Transport.pair ~recv_timeout_ms:100 () in
  b.Transport.close ();
  (match a.Transport.recv () with
  | Error Transport.Closed -> ()
  | _ -> Alcotest.fail "orderly shutdown must be Closed");
  (match a.Transport.send "into the void" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "send to a closed peer must fail");
  a.Transport.close ();
  (match a.Transport.recv () with
  | Error Transport.Closed -> ()
  | _ -> Alcotest.fail "recv on a closed transport must be Closed");
  (* EOF in the middle of a frame is corruption, not a clean close. *)
  let a, b =
    Transport.pair ~recv_timeout_ms:100
      ~mangle_b:(fun frame -> [ String.sub frame 0 5 ])
      ()
  in
  (match b.Transport.send "will be cut short" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  b.Transport.close ();
  (match a.Transport.recv () with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "EOF inside a frame must be Corrupt");
  a.Transport.close ()

let test_chaos_mangler_deterministic () =
  let frame = Transport.Frame.encode "some payload" in
  let chaos =
    {
      Transport.drop = 0.2;
      duplicate = 0.3;
      truncate = 0.2;
      bitflip = 0.3;
      garbage = 0.3;
    }
  in
  let stream seed =
    List.init 50 (fun _ ->
        Transport.chaos_mangler ~rng:(Rng.create seed) chaos frame)
    |> List.concat
  in
  checkb "same seed, same corruption" true (stream 7 = stream 7);
  checkb "identity under no_chaos" true
    (Transport.chaos_mangler ~rng:(Rng.create 1) Transport.no_chaos frame
    = [ frame ]);
  checkb "certain drop discards the frame" true
    (Transport.chaos_mangler ~rng:(Rng.create 1)
       { Transport.no_chaos with Transport.drop = 1.0 }
       frame
    = [])

(* --- handshake codec --- *)

let test_handshake_codec () =
  checkb "hello round-trips" true
    (Message.decode_hello (Message.encode_hello ~version:3) = Ok 3);
  checkb "welcome round-trips" true
    (Message.decode_greeting (Message.encode_welcome ~version:1)
    = Ok (Message.Welcome 1));
  (match Message.decode_greeting (Message.encode_reject ~reason:"v2 only\nsorry") with
  | Ok (Message.Reject r) -> checks "reject reason survives" "v2 only\nsorry" r
  | _ -> Alcotest.fail "reject must decode");
  List.iter
    (fun line ->
      checkb (Printf.sprintf "malformed hello %S" line) true
        (is_error (Message.decode_hello line)))
    [ ""; "HELLO"; "HELLO afex"; "HELLO afex x"; "HELLO smtp 1"; "RUN 1 a b" ];
  List.iter
    (fun line ->
      checkb (Printf.sprintf "malformed greeting %S" line) true
        (is_error (Message.decode_greeting line)))
    [ ""; "WELCOME"; "WELCOME afex nope"; "HELLO afex 1" ]

let test_serve_rejects_version_mismatch () =
  let client, server = Transport.pair ~recv_timeout_ms:2000 () in
  let manager = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let d = Domain.spawn (fun () -> RM.serve_connection manager server) in
  (match client.Transport.send (Message.encode_hello ~version:999) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  (match Message.decode_greeting (get_ok "greeting" (client.Transport.recv ())) with
  | Ok (Message.Reject _) -> ()
  | _ -> Alcotest.fail "future protocol version must be rejected");
  client.Transport.close ();
  checkb "server reported the protocol error" true
    (match Domain.join d with Error (RM.Protocol _) -> true | _ -> false)

let test_wire_session_survives_garbage () =
  (* Full exchange against a live server domain: handshake, a garbage
     line (answered, connection survives), a real scenario, shutdown. *)
  let client, server = Transport.pair ~recv_timeout_ms:2000 () in
  let manager = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let d = Domain.spawn (fun () -> RM.serve_connection manager server) in
  let send line =
    match client.Transport.send line with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e)
  in
  send (Message.encode_hello ~version:Message.protocol_version);
  (match Message.decode_greeting (get_ok "greeting" (client.Transport.recv ())) with
  | Ok (Message.Welcome v) -> checki "version" Message.protocol_version v
  | _ -> Alcotest.fail "expected WELCOME");
  send "complete nonsense";
  (match Message.decode_from_manager (get_ok "reply" (client.Transport.recv ())) with
  | Ok (Message.Manager_error { seq; _ }) -> checki "undecodable -> seq -1" (-1) seq
  | _ -> Alcotest.fail "garbage must be answered with a manager error");
  let scenario = List.hd (sample_scenarios 1) in
  send (Message.encode_to_manager (Message.Run_scenario { seq = 4; scenario }));
  (match Message.decode_from_manager (get_ok "reply" (client.Transport.recv ())) with
  | Ok (Message.Scenario_result r) ->
      checki "matching seq" 4 r.Message.seq;
      checki "managers send new_blocks 0" 0 r.Message.new_blocks
  | _ -> Alcotest.fail "expected a scenario result");
  send (Message.encode_to_manager Message.Shutdown);
  checkb "clean server exit" true (Domain.join d = Ok ());
  checki "the manager ran exactly one test" 1 (Node_manager.tests_run manager);
  client.Transport.close ()

(* --- from_manager codec: property round-trip --- *)

let statuses = [| Outcome.Passed; Outcome.Test_failed; Outcome.Crashed; Outcome.Hung |]

let random_report rng =
  let funcs = [| "read"; "write"; "malloc"; "\xc3\xa9crire_r\xc3\xa9seau"; "select" |] in
  let errnos = [| "EIO"; "ENOMEM"; "EINTR" |] in
  let frames =
    [|
      "";
      "main (a.c:1)";
      "frame with spaces";
      "comma,separated,frame";
      "embedded\nnewline";
      "100% r\xc3\xa9seau";
      "tab\there";
    |]
  in
  let pick a = a.(Rng.int rng (Array.length a)) in
  let stack () =
    match Rng.int rng 5 with
    | 0 -> None
    | 1 -> Some []
    | 2 -> Some [ "" ]
    | _ -> Some (List.init (1 + Rng.int rng 4) (fun _ -> pick frames))
  in
  {
    Message.seq = Rng.int rng 100_000;
    status = pick statuses;
    triggered = Rng.bernoulli rng 0.5;
    new_blocks = Rng.int rng 50;
    fault =
      Fault.make ~test_id:(Rng.int rng 50) ~func:(pick funcs)
        ~call_number:(Rng.int rng 6) ~errno:(pick errnos)
        ~retval:(Rng.int rng 3 - 1) ();
    coverage =
      List.sort_uniq compare (List.init (Rng.int rng 12) (fun _ -> Rng.int rng 400));
    injection_stack = stack ();
    crash_stack = stack ();
    duration_ms = (if Rng.bernoulli rng 0.1 then 0.0 else Rng.float rng 500.0);
  }

(* A failing codec bug used to print "case 73 of 200" and the full
   40-field report; the [Prop] harness shrinks to a minimal report (one
   field away from trivial) and prints the seed to replay it. *)
let report_arb =
  let trivial_fault =
    Fault.make ~test_id:0 ~func:"f" ~call_number:0 ~errno:"EIO" ~retval:0 ()
  in
  let shrink_stack r get set =
    match get r with
    | None -> []
    | Some [] -> [ set r None ]
    | Some (_ :: rest) -> [ set r None; set r (Some rest) ]
  in
  let shrink r =
    List.concat
      [
        (if r.Message.seq <> 0 then [ { r with Message.seq = 0 } ] else []);
        (if r.Message.status <> Outcome.Passed then
           [ { r with Message.status = Outcome.Passed } ]
         else []);
        (if r.Message.triggered then [ { r with Message.triggered = false } ]
         else []);
        (if r.Message.new_blocks <> 0 then [ { r with Message.new_blocks = 0 } ]
         else []);
        (if r.Message.duration_ms <> 0.0 then
           [ { r with Message.duration_ms = 0.0 } ]
         else []);
        (match r.Message.coverage with
        | [] -> []
        | _ :: rest ->
            [ { r with Message.coverage = [] }; { r with Message.coverage = rest } ]);
        shrink_stack r
          (fun r -> r.Message.injection_stack)
          (fun r s -> { r with Message.injection_stack = s });
        shrink_stack r
          (fun r -> r.Message.crash_stack)
          (fun r s -> { r with Message.crash_stack = s });
        (if r.Message.fault <> trivial_fault then
           [ { r with Message.fault = trivial_fault } ]
         else []);
      ]
  in
  let show r = Message.encode_from_manager (Message.Scenario_result r) in
  Prop.make ~shrink ~show random_report

let test_from_manager_roundtrip_property () =
  Prop.check ~count:200 ~seed:2026 "from_manager round-trip" report_arb (fun r ->
      let line = Message.encode_from_manager (Message.Scenario_result r) in
      (not (String.contains line '\n'))
      &&
      match Message.decode_from_manager line with
      | Ok (Message.Scenario_result r') -> r' = r
      | Ok (Message.Manager_error _) | Error _ -> false)

let test_manager_error_roundtrip () =
  List.iter
    (fun (seq, message) ->
      let line =
        Message.encode_from_manager (Message.Manager_error { seq; message })
      in
      match Message.decode_from_manager line with
      | Ok (Message.Manager_error { seq = seq'; message = message' }) ->
          checki "seq" seq seq';
          checks "message" message message'
      | _ -> Alcotest.failf "manager error %S did not round-trip" message)
    [
      (1, "plain failure");
      (-1, "could not decode the request");
      (7, "");
      (12, "multi\nline\nerror");
      (3, "r\xc3\xa9seau d\xc3\xa9connect\xc3\xa9 100%");
    ]

let test_from_manager_malformed () =
  List.iter
    (fun line ->
      checkb (Printf.sprintf "reject %S" line) true
        (is_error (Message.decode_from_manager line)))
    [
      "";
      "RESULT";
      "RESULT 1 P";
      "RESULT x P T 0 0x1p1 f @0: @0: @0:";  (* bad seq *)
      "RESULT 1 Q T 0 0x1p1 f @0: @0: @0:";  (* unknown status token *)
      "RESULT 1 P X 0 0x1p1 f @0: @0: @0:";  (* bad triggered flag *)
      "RESULT 1 P T zz 0x1p1 f @0: @0: @0:"; (* bad new_blocks *)
      "RESULT 1 P T 0 fast f @0: @0: @0:";   (* bad duration *)
      "RESULT 1 P T 0 0x1p1 f 3-1 @0: @0:";  (* descending coverage range *)
      "RESULT 1 P T 0 0x1p1 f -3 @0: @0:";   (* negative coverage *)
      "RESULT 1 P T 0 0x1p1 f 0,1 @nope: @0:"; (* bad stack count *)
      "ERROR";
      "ERROR x boom";
      "HELLO afex 1";
      "a perfectly ordinary sentence";
    ]

let test_to_manager_total () =
  (* Satellite: decode_to_manager must reject anything malformed. *)
  let scenario = List.hd (sample_scenarios 1) in
  let line = Message.encode_to_manager (Message.Run_scenario { seq = 9; scenario }) in
  (match Message.decode_to_manager line with
  | Ok (Message.Run_scenario r) ->
      checki "seq" 9 r.seq;
      checks "scenario" (Scenario.to_string scenario) (Scenario.to_string r.scenario)
  | _ -> Alcotest.fail "RUN must round-trip");
  checkb "shutdown round-trips" true
    (Message.decode_to_manager (Message.encode_to_manager Message.Shutdown)
    = Ok Message.Shutdown);
  List.iter
    (fun line ->
      checkb
        (Printf.sprintf "reject %S" (String.sub line 0 (min 30 (String.length line))))
        true
        (is_error (Message.decode_to_manager line)))
    [
      "";
      " ";
      "RUN";
      "RUN 1";
      "RUN x read 1";
      "RUN -2 read 1";
      "WALK 1 read 1";
      "RUN 1 " ^ String.make (Message.max_line + 1) 'a';
    ]

let test_coverage_ranges () =
  let base = random_report (Rng.create 5) in
  List.iter
    (fun coverage ->
      let r = { base with Message.coverage } in
      match Message.decode_from_manager
              (Message.encode_from_manager (Message.Scenario_result r))
      with
      | Ok (Message.Scenario_result r') ->
          checkb "coverage round-trips" true (r'.Message.coverage = coverage)
      | _ -> Alcotest.fail "coverage variant did not decode")
    [
      [];
      [ 0 ];
      [ 399 ];
      [ 0; 1; 2; 3; 4 ];
      [ 7; 9; 11 ];
      [ 0; 1; 2; 50; 51; 52; 53; 400 ];
    ]

let test_outcome_report_roundtrip () =
  let exec = executor () in
  let total_blocks = exec.Afex.Executor.total_blocks in
  List.iter
    (fun scenario ->
      let outcome = exec.Afex.Executor.run_scenario scenario in
      let report = Message.report_of_outcome ~seq:1 outcome in
      match Message.outcome_of_report ~total_blocks report with
      | Ok rebuilt ->
          checkb "outcome rebuilt bit-for-bit" true (outcome_equal outcome rebuilt)
      | Error m -> Alcotest.failf "outcome_of_report: %s" m)
    (sample_scenarios 10);
  (* Coverage indices outside the explorer's bitset must not crash. *)
  let report =
    { (random_report (Rng.create 3)) with Message.coverage = [ 0; 99_999 ] }
  in
  checkb "out-of-range coverage is a typed error" true
    (is_error (Message.outcome_of_report ~total_blocks:100 report))

(* --- the remote-manager proxy over the loopback --- *)

let test_loopback_outcome_equality () =
  let exec = executor () in
  let lb = RM.Loopback.create ~executor:exec () in
  let rm = RM.create (RM.Loopback.spec lb) ~total_blocks:exec.Afex.Executor.total_blocks in
  List.iter
    (fun scenario ->
      let remote = get_ok "run_scenario" (RM.run_scenario rm scenario) in
      let local = exec.Afex.Executor.run_scenario scenario in
      checkb "remote outcome equals local outcome" true (outcome_equal remote local))
    (sample_scenarios 20);
  let s = RM.stats rm in
  checki "20 requests" 20 s.RM.requests;
  checki "no retries on a clean wire" 0 s.RM.retries;
  checki "one dial" 1 s.RM.dials;
  RM.close rm;
  RM.Loopback.shutdown lb;
  checki "exactly one connection was made" 1 (RM.Loopback.connections lb)

let test_loopback_manager_error_not_retried () =
  let failing =
    Afex.Executor.of_scenario_fn ~total_blocks:10 ~description:"always fails"
      (fun _ -> invalid_arg "executor exploded")
  in
  let lb = RM.Loopback.create ~executor:failing () in
  let rm = RM.create (RM.Loopback.spec lb) ~total_blocks:10 in
  let scenario = List.hd (sample_scenarios 1) in
  (match RM.run_scenario rm scenario with
  | Error (RM.Manager m) ->
      checkb "the manager's message survives" true
        (m = "executor exploded")
  | _ -> Alcotest.fail "a manager-side failure must surface as Manager");
  let s = RM.stats rm in
  checki "manager errors are deterministic: no retry" 0 s.RM.retries;
  checki "counted" 1 s.RM.manager_errors;
  RM.close rm;
  RM.Loopback.shutdown lb

(* --- chaos: the dispatcher under transport fault injection --- *)

let mild_chaos =
  {
    Transport.drop = 0.15;
    duplicate = 0.15;
    truncate = 0.05;
    bitflip = 0.1;
    garbage = 0.1;
  }

let run_under_chaos ~chaos_to_server ~chaos_to_client ~seed =
  let exec = executor () in
  let lb =
    RM.Loopback.create ?chaos_to_server ?chaos_to_client ~chaos_seed:seed
      ~recv_timeout_ms:40 ~executor:exec ()
  in
  let rm =
    RM.create
      (RM.Loopback.spec ~max_attempts:10 ~backoff_ms:0.2 lb)
      ~total_blocks:exec.Afex.Executor.total_blocks
  in
  let scenarios = sample_scenarios 15 in
  List.iter
    (fun scenario ->
      let remote = get_ok "run under chaos" (RM.run_scenario rm scenario) in
      let local = exec.Afex.Executor.run_scenario scenario in
      checkb "chaos never corrupts an accepted outcome" true
        (outcome_equal remote local))
    scenarios;
  let s = RM.stats rm in
  RM.close rm;
  RM.Loopback.shutdown lb;
  s

let test_chaos_on_requests () =
  let s =
    run_under_chaos
      ~chaos_to_server:(Some { mild_chaos with Transport.bitflip = 0.2 })
      ~chaos_to_client:None ~seed:11
  in
  checki "all requests accounted" 15 s.RM.requests;
  checkb "corruption forced retries" true (s.RM.retries > 0);
  checkb "reconnects happened" true (s.RM.dials > 1)

let test_chaos_on_replies () =
  let s =
    run_under_chaos ~chaos_to_server:None
      ~chaos_to_client:(Some mild_chaos) ~seed:23
  in
  checki "all requests accounted" 15 s.RM.requests;
  checkb "corrupted replies forced retries" true (s.RM.retries > 0)

let test_chaos_blackout_is_bounded () =
  (* A wire that delivers nothing: the proxy must fail with a typed error
     after its retry budget — never hang, never fake an outcome. *)
  let exec = executor () in
  let lb =
    RM.Loopback.create
      ~chaos_to_server:{ Transport.no_chaos with Transport.drop = 1.0 }
      ~recv_timeout_ms:30 ~executor:exec ()
  in
  let rm =
    RM.create
      (RM.Loopback.spec ~max_attempts:3 ~backoff_ms:0.2 lb)
      ~total_blocks:exec.Afex.Executor.total_blocks
  in
  (match RM.run_scenario rm (List.hd (sample_scenarios 1)) with
  | Error (RM.Exhausted { attempts; _ }) -> checki "budget respected" 3 attempts
  | Error _ -> Alcotest.fail "expected Exhausted after the retry budget"
  | Ok _ -> Alcotest.fail "a dead wire cannot produce an outcome");
  RM.close rm;
  RM.Loopback.shutdown lb

(* --- the pool with remote workers --- *)

let pool_history ?remotes ~jobs ~seed () =
  let exec = executor () in
  let result, stats =
    Pool.run ?remotes ~jobs ~batch_size:16 ~iterations:150
      (Config.fitness_guided ~seed ())
      (Apache.space ()) (Pool.Pure exec)
  in
  (history result, stats)

let test_pool_remote_only_matches_local () =
  let exec = executor () in
  let lb = RM.Loopback.create ~executor:exec () in
  let remote, stats =
    pool_history ~remotes:[ RM.Loopback.spec lb ] ~jobs:0 ~seed:41 ()
  in
  RM.Loopback.shutdown lb;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "remote-only history equals in-process history" true (remote = local);
  checkb "everything went over the wire" true (stats.Pool.remote_runs > 0);
  checki "no fallbacks on a clean wire" 0 stats.Pool.remote_fallbacks

let test_pool_mixed_matches_local () =
  let exec = executor () in
  let lb1 = RM.Loopback.create ~name:"lb1" ~executor:exec () in
  let lb2 = RM.Loopback.create ~name:"lb2" ~executor:exec () in
  let mixed, stats =
    pool_history
      ~remotes:[ RM.Loopback.spec lb1; RM.Loopback.spec lb2 ]
      ~jobs:2 ~seed:41 ()
  in
  RM.Loopback.shutdown lb1;
  RM.Loopback.shutdown lb2;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "mixed local+remote history equals in-process history" true
    (mixed = local);
  checkb "remotes participated" true (stats.Pool.remote_runs > 0)

let test_pool_chaotic_remote_matches_local () =
  let exec = executor () in
  let lb =
    RM.Loopback.create ~chaos_to_server:mild_chaos ~chaos_to_client:mild_chaos
      ~chaos_seed:17 ~recv_timeout_ms:40 ~executor:exec ()
  in
  let chaotic, _ =
    pool_history
      ~remotes:[ RM.Loopback.spec ~max_attempts:8 ~backoff_ms:0.2 lb ]
      ~jobs:1 ~seed:41 ()
  in
  RM.Loopback.shutdown lb;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "a byzantine wire cannot change the explored history" true
    (chaotic = local)

let test_pool_dead_remote_falls_back () =
  let dead =
    RM.spec ~max_attempts:2 ~backoff_ms:0.1 ~name:"unreachable" (fun () ->
        Error (Transport.Io "connection refused"))
  in
  let with_dead, stats = pool_history ~remotes:[ dead ] ~jobs:1 ~seed:41 () in
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "every scenario was recovered locally" true (with_dead = local);
  checki "nothing ran over the wire" 0 stats.Pool.remote_runs;
  checkb "the fallback path was exercised" true (stats.Pool.remote_fallbacks > 0)

let test_pool_rejects_bad_worker_mix () =
  let exec () = Pool.Pure (executor ()) in
  checkb "negative jobs rejected" true
    (try ignore (Pool.create ~jobs:(-1) (exec ())); false
     with Invalid_argument _ -> true);
  checkb "zero workers rejected" true
    (try ignore (Pool.create ~jobs:0 (exec ())); false
     with Invalid_argument _ -> true);
  let lb = RM.Loopback.create ~executor:(executor ()) () in
  let pool = Pool.create ~remotes:[ RM.Loopback.spec lb ] ~jobs:0 (exec ()) in
  checki "jobs 0 with a remote is a valid pool" 0 (Pool.jobs pool);
  Pool.shutdown pool;
  RM.Loopback.shutdown lb

(* --- wire protocol v2: varints, stateful codecs, negotiation --- *)

module V2 = Message.V2

let test_varint_properties () =
  let roundtrip_uv n =
    let b = Buffer.create 10 in
    V2.varint_encode b n;
    match V2.varint_decode (Buffer.contents b) ~pos:0 with
    | Ok (v, next) -> v = n && next = Buffer.length b
    | Error _ -> false
  in
  let roundtrip_sv n =
    let b = Buffer.create 10 in
    V2.svarint_encode b n;
    match V2.svarint_decode (Buffer.contents b) ~pos:0 with
    | Ok (v, next) -> v = n && next = Buffer.length b
    | Error _ -> false
  in
  (* Every byte-length boundary by hand, then random magnitudes. *)
  List.iter
    (fun n -> checkb (Printf.sprintf "uv %d round-trips" n) true (roundtrip_uv n))
    [ 0; 1; 127; 128; 16_383; 16_384; 0x7FFF_FFFF; max_int ];
  List.iter
    (fun n -> checkb (Printf.sprintf "sv %d round-trips" n) true (roundtrip_sv n))
    [ 0; 1; -1; 63; -64; 64; 12_345; -12_345; max_int; min_int ];
  let any_int =
    Prop.make
      ~shrink:(fun n -> if n = 0 then [] else [ 0; n / 2 ])
      ~show:string_of_int
      (fun rng ->
        let v = Rng.int rng (1 lsl Rng.int rng 62) in
        if Rng.bernoulli rng 0.5 then -v - 1 else v)
  in
  Prop.check ~count:300 ~seed:7 "unsigned varint round-trip" any_int (fun n ->
      roundtrip_uv (abs n));
  Prop.check ~count:300 ~seed:8 "signed varint round-trip" any_int roundtrip_sv;
  (* Totality: truncation, overflow, and the encoder's domain. *)
  checkb "truncated varint is an error" true
    (is_error (V2.varint_decode "\x80" ~pos:0));
  checkb "pos past the end is an error" true
    (is_error (V2.varint_decode "" ~pos:0));
  checkb "overflowing varint is an error" true
    (is_error (V2.varint_decode (String.make 10 '\xff') ~pos:0));
  checkb "negative unsigned encode is rejected" true
    (try
       V2.varint_encode (Buffer.create 4) (-1);
       false
     with Invalid_argument _ -> true)

let test_v2_request_codec () =
  (* Coalescing: many requests plus a shutdown in one frame payload,
     decoded in order with scenarios intact. *)
  let scenarios = sample_scenarios 8 in
  let enc = V2.client_enc () in
  let b = Buffer.create 512 in
  List.iteri (fun i s -> V2.encode_request enc b ~seq:i s) scenarios;
  V2.encode_shutdown b;
  (match V2.decode_requests (V2.server_dec ()) (Buffer.contents b) with
  | Error m -> Alcotest.failf "decode_requests: %s" m
  | Ok msgs ->
      checki "8 requests + shutdown" 9 (List.length msgs);
      List.iteri
        (fun i msg ->
          match msg with
          | Message.Run_scenario r when i < 8 ->
              checki "seq" i r.seq;
              checks "scenario"
                (Scenario.to_string (List.nth scenarios i))
                (Scenario.to_string r.scenario)
          | Message.Shutdown when i = 8 -> ()
          | _ -> Alcotest.failf "record %d decoded to the wrong message" i)
        msgs);
  (* Delta-encoding: the second send of a scenario rides the delta path
     and is strictly smaller than the first full send. *)
  let s = List.hd scenarios in
  let enc2 = V2.client_enc () in
  let b_full = Buffer.create 64 in
  V2.encode_request enc2 b_full ~seq:0 s;
  let b_delta = Buffer.create 64 in
  V2.encode_request enc2 b_delta ~seq:1 s;
  checkb "delta record is smaller than the full record" true
    (Buffer.length b_delta < Buffer.length b_full);
  let dec = V2.server_dec () in
  (match V2.decode_requests dec (Buffer.contents b_full) with
  | Ok [ Message.Run_scenario r ] ->
      checks "full scenario" (Scenario.to_string s) (Scenario.to_string r.scenario)
  | _ -> Alcotest.fail "full request must decode");
  (match V2.decode_requests dec (Buffer.contents b_delta) with
  | Ok [ Message.Run_scenario r ] ->
      checks "delta reconstructs the scenario" (Scenario.to_string s)
        (Scenario.to_string r.scenario)
  | _ -> Alcotest.fail "delta request must decode");
  (* A duplicated frame (chaos) replays a stale generation: skipped
     silently, never re-run and never fatal. *)
  (match V2.decode_requests dec (Buffer.contents b_full) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "stale generation must be skipped, not re-run");
  (* A dropped frame leaves a generation gap: connection-fatal. *)
  checkb "generation gap is an error" true
    (is_error (V2.decode_requests (V2.server_dec ()) (Buffer.contents b_delta)));
  (* A corrupted scenario checksum (the record's last varint) is caught. *)
  let corrupt = Bytes.of_string (Buffer.contents b_full) in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0x01));
  checkb "checksum mismatch is an error" true
    (is_error (V2.decode_requests (V2.server_dec ()) (Bytes.to_string corrupt)));
  checkb "negative seq is rejected at encode time" true
    (try
       V2.encode_request (V2.client_enc ()) (Buffer.create 16) ~seq:(-1) s;
       false
     with Invalid_argument _ -> true)

let test_v2_reply_roundtrip_property () =
  Prop.check ~count:150 ~seed:2027 "v2 reply round-trip" report_arb (fun r ->
      let senc = V2.server_enc () in
      let cdec = V2.client_dec () in
      let b = Buffer.create 256 in
      V2.encode_reply senc b (Message.Scenario_result r);
      match V2.decode_replies cdec (Buffer.contents b) with
      | Ok [ Message.Scenario_result r' ] -> r' = r
      | _ -> false);
  List.iter
    (fun (seq, message) ->
      let b = Buffer.create 64 in
      V2.encode_reply (V2.server_enc ()) b
        (Message.Manager_error { seq; message });
      match V2.decode_replies (V2.client_dec ()) (Buffer.contents b) with
      | Ok [ Message.Manager_error { seq = seq'; message = message' } ] ->
          checki "error seq" seq seq';
          checks "error message" message message'
      | _ -> Alcotest.failf "manager error %S did not round-trip" message)
    [ (1, "plain failure"); (-1, "undecodable"); (7, ""); (3, "multi\nline") ]

let test_v2_dict_interning () =
  (* One connection's worth of codec state: the first report announces
     its stack frames in a DICT record; repeats ship bare int ids. *)
  let r =
    {
      (random_report (Rng.create 9)) with
      Message.injection_stack = Some [ "alpha"; "beta" ];
      crash_stack = Some [ "beta"; "gamma" ];
    }
  in
  let senc = V2.server_enc () in
  let cdec = V2.client_dec () in
  let encode_once () =
    let b = Buffer.create 128 in
    V2.encode_reply senc b (Message.Scenario_result r);
    Buffer.contents b
  in
  let first = encode_once () in
  let second = encode_once () in
  checkb "steady-state reply is smaller (no DICT re-announcement)" true
    (String.length second < String.length first);
  List.iter
    (fun payload ->
      match V2.decode_replies cdec payload with
      | Ok [ Message.Scenario_result r' ] ->
          checkb "report survives interning" true (r' = r)
      | _ -> Alcotest.fail "interned reply must decode")
    [ first; second ];
  (* 3 unique stack frames + the fault descriptor. *)
  checki "server interned 4 unique strings" 4 (V2.server_dict_size senc);
  checki "client mirrors the dictionary" 4 (V2.client_dict_size cdec)

let test_v2_desync_is_error () =
  let report stack =
    {
      (random_report (Rng.create 9)) with
      Message.injection_stack = Some stack;
      crash_stack = None;
    }
  in
  let encode senc stack =
    let b = Buffer.create 128 in
    V2.encode_reply senc b (Message.Scenario_result (report stack));
    Buffer.contents b
  in
  (* Dropped DICT frame: the next announcement's base id leaves a gap. *)
  let senc = V2.server_enc () in
  let b1 = encode senc [ "a" ] in
  let b2 = encode senc [ "a"; "new-frame" ] in
  checkb "dictionary gap is an error" true
    (is_error (V2.decode_replies (V2.client_dec ()) b2));
  (* Steady-state reply (ids only, no DICT) hitting a fresh decoder:
     unknown id, not a silently wrong stack. *)
  let b3 = encode senc [ "a" ] in
  checkb "unknown stack-frame id is an error" true
    (is_error (V2.decode_replies (V2.client_dec ()) b3));
  (* Conflicting redefinition: a DICT record from a different connection
     claiming an id the decoder already holds. *)
  let cdec = V2.client_dec () in
  (match V2.decode_replies cdec b1 with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "first reply must decode");
  let b_conflict = encode (V2.server_enc ()) [ "zzz" ] in
  checkb "conflicting redefinition is an error" true
    (is_error (V2.decode_replies cdec b_conflict));
  (* A duplicated reply frame redefines its entries identically: a
     no-op for the dictionary, and the stale result is the caller's
     (sequence-matching) problem — never a decode error. *)
  let cdec2 = V2.client_dec () in
  (match (V2.decode_replies cdec2 b1, V2.decode_replies cdec2 b1) with
  | Ok [ _ ], Ok [ _ ] -> ()
  | _ -> Alcotest.fail "a duplicated reply frame must decode cleanly");
  (* The fault descriptor and one stack frame, interned exactly once. *)
  checki "duplicate DICT did not grow the dictionary" 2
    (V2.client_dict_size cdec2)

let test_decoder_chunk_granularity () =
  (* Satellite: the frame decoder fed v1 (text) and v2 (binary) frames
     at every chunk granularity 1-7 bytes — chunks landing mid-header,
     mid-payload and across frame boundaries — must produce identical
     results. *)
  let v1_payloads =
    [
      Message.encode_hello ~version:1;
      Message.encode_to_manager Message.Shutdown;
      Message.encode_from_manager
        (Message.Scenario_result (random_report (Rng.create 2)));
    ]
  in
  let senc = V2.server_enc () in
  let v2_payload i =
    let b = Buffer.create 128 in
    V2.encode_reply senc b (Message.Scenario_result (random_report (Rng.create i)));
    Buffer.contents b
  in
  let payloads = v1_payloads @ List.map v2_payload [ 3; 4; 5 ] in
  let stream = String.concat "" (List.map Transport.Frame.encode payloads) in
  let reference = get_ok "whole-stream decode" (decode_all stream) in
  checkb "whole-stream decode returns the inputs" true (reference = payloads);
  let decode_v2_tail ps =
    (* The v2 payloads decoded with fresh per-"connection" codec state. *)
    let cdec = V2.client_dec () in
    List.concat_map
      (fun p -> get_ok "v2 payload decode" (V2.decode_replies cdec p))
      (List.filteri (fun i _ -> i >= List.length v1_payloads) ps)
  in
  let reference_replies = decode_v2_tail reference in
  checki "three v2 replies in the stream" 3 (List.length reference_replies);
  for k = 1 to 7 do
    let d = Transport.Frame.create () in
    let acc = ref [] in
    let n = String.length stream in
    let pos = ref 0 in
    while !pos < n do
      let len = min k (n - !pos) in
      Transport.Frame.feed d (String.sub stream !pos len);
      pos := !pos + len;
      let rec drain_frames () =
        match Transport.Frame.next d with
        | Ok (Some p) ->
            acc := p :: !acc;
            drain_frames ()
        | Ok None -> ()
        | Error e ->
            Alcotest.failf "chunk %d: %s" k (Transport.string_of_error e)
      in
      drain_frames ()
    done;
    let got = List.rev !acc in
    checkb (Printf.sprintf "chunk granularity %d matches whole-stream" k) true
      (got = reference);
    checkb
      (Printf.sprintf "v2 replies identical at granularity %d" k)
      true
      (decode_v2_tail got = reference_replies)
  done

let test_wire_negotiation_downgrade () =
  let exec = executor () in
  let total_blocks = exec.Afex.Executor.total_blocks in
  let scenarios = sample_scenarios 5 in
  let against ?wire ~wire_max () =
    let lb = RM.Loopback.create ~wire_max ~executor:exec () in
    let rm = RM.create (RM.Loopback.spec ?wire lb) ~total_blocks in
    List.iter
      (fun scenario ->
        let remote = get_ok "run_scenario" (RM.run_scenario rm scenario) in
        checkb "outcome equal across negotiation" true
          (outcome_equal remote (exec.Afex.Executor.run_scenario scenario)))
      scenarios;
    let s = RM.stats rm in
    RM.close rm;
    RM.Loopback.shutdown lb;
    s
  in
  (* A v2 client meeting a v1-only manager: rejected, redials offering
     v1, counts the downgrade — and the outcomes are unaffected. *)
  let s = against ~wire_max:1 () in
  checki "negotiated down to v1" 1 s.RM.wire;
  checki "the downgrade was counted" 1 s.RM.wire_downgrades;
  (* A client pinned to v1 against a v2-capable manager: plain v1, no
     downgrade (nothing was rejected). *)
  let s = against ~wire:1 ~wire_max:Message.protocol_version_max () in
  checki "pinned v1 negotiates v1" 1 s.RM.wire;
  checki "pinning is not a downgrade" 0 s.RM.wire_downgrades;
  (* Both sides v2: the default. *)
  let s = against ~wire_max:Message.protocol_version_max () in
  checki "v2 negotiated by default" 2 s.RM.wire;
  checki "no downgrade" 0 s.RM.wire_downgrades;
  checkb "frames were counted" true (s.RM.frames_out > 0 && s.RM.frames_in > 0);
  checkb "bytes were counted" true (s.RM.bytes_out > 0 && s.RM.bytes_in > 0);
  (* Spec validation: versions this build cannot speak are caught at
     construction, not on the wire. *)
  let dead () = Error (Transport.Io "unused") in
  List.iter
    (fun f ->
      checkb "invalid spec rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> RM.spec ~wire:0 ~name:"x" dead);
      (fun () -> RM.spec ~wire:(Message.protocol_version_max + 1) ~name:"x" dead);
      (fun () -> RM.spec ~flush_bytes:0 ~name:"x" dead);
    ]

let test_pipelined_coalescing () =
  (* Several submits under the default 8 KiB flush threshold sit in the
     coalescing buffer, then travel as ONE frame: handshake + batch =
     exactly two frames out, against six requests. *)
  let exec = executor () in
  let total_blocks = exec.Afex.Executor.total_blocks in
  let lb = RM.Loopback.create ~executor:exec () in
  let conn = RM.Pipelined.create (RM.Loopback.spec lb) ~total_blocks in
  let scenarios = Array.of_list (sample_scenarios 6) in
  Array.iteri
    (fun i s ->
      match RM.Pipelined.submit conn ~tag:i s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "submit: %s" (RM.string_of_error e))
    scenarios;
  checkb "requests coalesce in the buffer" true (RM.Pipelined.buffered conn > 0);
  checki "all six pending" 6 (RM.Pipelined.pending conn);
  (match RM.Pipelined.flush conn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %s" (RM.string_of_error e));
  checki "flush drained the buffer" 0 (RM.Pipelined.buffered conn);
  let deadline = Unix.gettimeofday () +. 10.0 in
  let results = ref [] in
  while List.length !results < 6 && Unix.gettimeofday () < deadline do
    match RM.Pipelined.drain conn with
    | [] -> Unix.sleepf 0.002
    | rs -> results := rs @ !results
  done;
  checki "all six answered" 6 (List.length !results);
  checkb "no orphans on a clean wire" true (RM.Pipelined.take_orphans conn = []);
  List.iter
    (fun (tag, r) ->
      let outcome = get_ok "pipelined outcome" r in
      checkb "pipelined outcome equals local" true
        (outcome_equal outcome
           (exec.Afex.Executor.run_scenario scenarios.(tag))))
    !results;
  let s = RM.Pipelined.stats conn in
  checki "six requests" 6 s.RM.requests;
  checki "exactly two frames out: HELLO + one coalesced batch" 2 s.RM.frames_out;
  checkb "fewer frames than requests" true (s.RM.frames_out < s.RM.requests);
  RM.Pipelined.close conn;
  RM.Loopback.shutdown lb

let test_pool_wire_version_matrix () =
  (* The acceptance matrix in-process: explored histories over v2, v1,
     and a forced v2->v1 downgrade are all byte-identical to local.
     (The chaos leg rides [test_pool_chaotic_remote_matches_local],
     which negotiates v2 by default.) *)
  let exec = executor () in
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  let leg ?wire ?wire_max () =
    let lb = RM.Loopback.create ?wire_max ~executor:exec () in
    let h, stats =
      pool_history ~remotes:[ RM.Loopback.spec ?wire lb ] ~jobs:0 ~seed:41 ()
    in
    RM.Loopback.shutdown lb;
    (h, stats)
  in
  let v2, s2 = leg () in
  checkb "v2 history equals local" true (v2 = local);
  checki "no downgrade when both sides speak v2" 0 s2.Pool.wire_downgrades;
  let v1, s1 = leg ~wire:1 () in
  checkb "pinned-v1 history equals local" true (v1 = local);
  checki "pinning is not a downgrade" 0 s1.Pool.wire_downgrades;
  let down, s0 = leg ~wire_max:1 () in
  checkb "downgraded history equals local" true (down = local);
  checkb "the pool surfaced the downgrade" true (s0.Pool.wire_downgrades >= 1);
  checkb "the downgraded wire still carried the runs" true
    (s0.Pool.remote_runs > 0)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("frame round-trip", test_frame_roundtrip);
      ("frame survives byte-wise delivery", test_frame_incremental);
      ("multiple frames per feed", test_frame_multiple_per_feed);
      ("bad magic is corrupt", test_frame_bad_magic);
      ("oversized frames are typed errors", test_frame_oversized);
      ("checksum catches bit flips", test_frame_checksum);
      ("socketpair round-trip", test_pair_roundtrip);
      ("receive timeout", test_recv_timeout);
      ("closed and truncated peers", test_closed_and_truncated_peer);
      ("chaos mangler is seeded", test_chaos_mangler_deterministic);
      ("handshake codec", test_handshake_codec);
      ("version mismatch is rejected", test_serve_rejects_version_mismatch);
      ("wire session survives garbage", test_wire_session_survives_garbage);
      ("from_manager round-trip (property)", test_from_manager_roundtrip_property);
      ("manager errors round-trip", test_manager_error_roundtrip);
      ("from_manager rejects malformed lines", test_from_manager_malformed);
      ("to_manager is total", test_to_manager_total);
      ("coverage range codec", test_coverage_ranges);
      ("outcome <-> report round-trip", test_outcome_report_roundtrip);
      ("loopback outcome equality", test_loopback_outcome_equality);
      ("manager errors are not retried", test_loopback_manager_error_not_retried);
      ("chaos on requests", test_chaos_on_requests);
      ("chaos on replies", test_chaos_on_replies);
      ("total blackout is bounded", test_chaos_blackout_is_bounded);
      ("pool: remote-only matches local", test_pool_remote_only_matches_local);
      ("pool: mixed matches local", test_pool_mixed_matches_local);
      ("pool: chaotic remote matches local", test_pool_chaotic_remote_matches_local);
      ("pool: dead remote falls back", test_pool_dead_remote_falls_back);
      ("pool: rejects bad worker mix", test_pool_rejects_bad_worker_mix);
      ("v2: varint properties", test_varint_properties);
      ("v2: request codec (coalesce, delta, desync)", test_v2_request_codec);
      ("v2: reply round-trip (property)", test_v2_reply_roundtrip_property);
      ("v2: dictionary interning reaches steady state", test_v2_dict_interning);
      ("v2: desync is an error, never a wrong report", test_v2_desync_is_error);
      ("frame decoder at chunk granularities 1-7", test_decoder_chunk_granularity);
      ("wire negotiation and downgrade", test_wire_negotiation_downgrade);
      ("pipelined requests coalesce into frames", test_pipelined_coalescing);
      ("pool: wire version matrix matches local", test_pool_wire_version_matrix);
    ]
