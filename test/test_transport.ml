(* Tests for the remote-dispatch stack: frame codec, socketpair transport,
   wire message codecs, the remote-manager proxy/server pair, and the
   chaos (transport fault injection) harness — a fault-injection tool's
   own transport gets tested under injected faults. *)

module Transport = Afex_cluster.Transport
module Message = Afex_cluster.Message
module RM = Afex_cluster.Remote_manager
module Node_manager = Afex_cluster.Node_manager
module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Point = Afex_faultspace.Point
module Scenario = Afex_faultspace.Scenario
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset
module Rng = Afex_stats.Rng
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let get_ok label = function
  | Ok v -> v
  | Error _ -> Alcotest.failf "%s: unexpected Error" label

let is_error = function Error _ -> true | Ok _ -> false
let executor () = Afex.Executor.of_target (Apache.target ())

(* Valid scenarios for the apache target, deterministically sampled. *)
let sample_scenarios n =
  let exec = executor () in
  let explorer =
    Afex.Explorer.create (Config.random_search ~seed:99 ()) (Apache.space ()) exec
  in
  List.init n (fun _ ->
      match Afex.Explorer.next explorer with
      | Some p -> Afex.Explorer.scenario_for explorer p
      | None -> Alcotest.fail "sample_scenarios: space exhausted")

let outcome_equal (a : Outcome.t) (b : Outcome.t) =
  Fault.equal a.Outcome.fault b.Outcome.fault
  && a.Outcome.status = b.Outcome.status
  && a.Outcome.triggered = b.Outcome.triggered
  && Bitset.equal a.Outcome.coverage b.Outcome.coverage
  && a.Outcome.injection_stack = b.Outcome.injection_stack
  && a.Outcome.crash_stack = b.Outcome.crash_stack
  && a.Outcome.duration_ms = b.Outcome.duration_ms

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      (Point.key c.Test_case.point, Outcome.status_to_string c.Test_case.status,
       c.Test_case.fitness))
    r.Session.executed

(* --- the frame codec --- *)

let decode_all bytes =
  let d = Transport.Frame.create () in
  Transport.Frame.feed d bytes;
  let rec go acc =
    match Transport.Frame.next d with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match decode_all (Transport.Frame.encode payload) with
      | Ok [ p ] -> checks "payload" payload p
      | Ok _ -> Alcotest.fail "expected exactly one frame"
      | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e))
    [
      "";
      "x";
      "hello world\n";
      String.init 256 Char.chr;
      String.make 100_000 'A';
    ]

let test_frame_incremental () =
  (* One byte at a time: the decoder must tolerate any stream chunking. *)
  let payload = "RESULT 7 P T 0 0x1p-3 \xc3\xa9" in
  let bytes = Transport.Frame.encode payload in
  let d = Transport.Frame.create () in
  let got = ref None in
  String.iter
    (fun c ->
      Transport.Frame.feed d (String.make 1 c);
      match Transport.Frame.next d with
      | Ok (Some p) -> got := Some p
      | Ok None -> ()
      | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e))
    bytes;
  checks "payload survives byte-wise delivery" payload
    (Option.value ~default:"<none>" !got);
  checki "nothing left over" 0 (Transport.Frame.pending d)

let test_frame_multiple_per_feed () =
  let payloads = [ "a"; ""; "third frame"; String.make 999 'z' ] in
  let bytes = String.concat "" (List.map Transport.Frame.encode payloads) in
  match decode_all bytes with
  | Ok got -> checkb "all frames decoded in order" true (got = payloads)
  | Error e -> Alcotest.failf "decode: %s" (Transport.string_of_error e)

let test_frame_bad_magic () =
  (match decode_all "XYZW garbage" with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "garbage must be Corrupt");
  (* Right first byte, wrong second: still caught. *)
  let bytes = Transport.Frame.encode "ok" in
  let broken = Bytes.of_string bytes in
  Bytes.set broken 1 'Z';
  match decode_all (Bytes.to_string broken) with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "bad second magic byte must be Corrupt"

let test_frame_oversized () =
  (* A garbage length prefix must fail fast, not trigger a huge read. *)
  let b = Buffer.create 16 in
  Buffer.add_string b "AF";
  Buffer.add_string b "\x7f\xff\xff\xff";
  Buffer.add_string b "\x00\x00\x00\x00";
  (match decode_all (Buffer.contents b) with
  | Error (Transport.Frame_too_large _) -> ()
  | _ -> Alcotest.fail "oversized declared length must be Frame_too_large");
  checkb "encode rejects oversized payloads" true
    (try
       ignore (Transport.Frame.encode (String.make (Transport.max_frame + 1) 'x'));
       false
     with Invalid_argument _ -> true);
  let a, b' = Transport.pair () in
  (match a.Transport.send (String.make (Transport.max_frame + 1) 'x') with
  | Error (Transport.Frame_too_large _) -> ()
  | _ -> Alcotest.fail "send of an oversized payload must be a typed error");
  a.Transport.close ();
  b'.Transport.close ()

let test_frame_checksum () =
  let bytes = Bytes.of_string (Transport.Frame.encode "checksummed payload") in
  (* Flip one payload bit. *)
  let i = Bytes.length bytes - 3 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
  match decode_all (Bytes.to_string bytes) with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "bit flip must be a checksum mismatch"

(* --- the socketpair transport --- *)

let test_pair_roundtrip () =
  let a, b = Transport.pair () in
  let messages =
    [ "plain"; ""; "newline\nin the middle"; "non-ASCII: r\xc3\xa9seau \xf0\x9f\x90\xab" ]
  in
  List.iter
    (fun m ->
      (match a.Transport.send m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
      checks "a -> b" m (get_ok "recv" (b.Transport.recv ())))
    messages;
  (match b.Transport.send "the other way" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  checks "b -> a" "the other way" (get_ok "recv" (a.Transport.recv ()));
  a.Transport.close ();
  b.Transport.close ()

let test_recv_timeout () =
  let a, b = Transport.pair ~recv_timeout_ms:30 () in
  (match a.Transport.recv () with
  | Error Transport.Timeout -> ()
  | _ -> Alcotest.fail "silent peer must be Timeout, not a hang");
  a.Transport.close ();
  b.Transport.close ()

let test_closed_and_truncated_peer () =
  let a, b = Transport.pair ~recv_timeout_ms:100 () in
  b.Transport.close ();
  (match a.Transport.recv () with
  | Error Transport.Closed -> ()
  | _ -> Alcotest.fail "orderly shutdown must be Closed");
  (match a.Transport.send "into the void" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "send to a closed peer must fail");
  a.Transport.close ();
  (match a.Transport.recv () with
  | Error Transport.Closed -> ()
  | _ -> Alcotest.fail "recv on a closed transport must be Closed");
  (* EOF in the middle of a frame is corruption, not a clean close. *)
  let a, b =
    Transport.pair ~recv_timeout_ms:100
      ~mangle_b:(fun frame -> [ String.sub frame 0 5 ])
      ()
  in
  (match b.Transport.send "will be cut short" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  b.Transport.close ();
  (match a.Transport.recv () with
  | Error (Transport.Corrupt _) -> ()
  | _ -> Alcotest.fail "EOF inside a frame must be Corrupt");
  a.Transport.close ()

let test_chaos_mangler_deterministic () =
  let frame = Transport.Frame.encode "some payload" in
  let chaos =
    {
      Transport.drop = 0.2;
      duplicate = 0.3;
      truncate = 0.2;
      bitflip = 0.3;
      garbage = 0.3;
    }
  in
  let stream seed =
    List.init 50 (fun _ ->
        Transport.chaos_mangler ~rng:(Rng.create seed) chaos frame)
    |> List.concat
  in
  checkb "same seed, same corruption" true (stream 7 = stream 7);
  checkb "identity under no_chaos" true
    (Transport.chaos_mangler ~rng:(Rng.create 1) Transport.no_chaos frame
    = [ frame ]);
  checkb "certain drop discards the frame" true
    (Transport.chaos_mangler ~rng:(Rng.create 1)
       { Transport.no_chaos with Transport.drop = 1.0 }
       frame
    = [])

(* --- handshake codec --- *)

let test_handshake_codec () =
  checkb "hello round-trips" true
    (Message.decode_hello (Message.encode_hello ~version:3) = Ok 3);
  checkb "welcome round-trips" true
    (Message.decode_greeting (Message.encode_welcome ~version:1)
    = Ok (Message.Welcome 1));
  (match Message.decode_greeting (Message.encode_reject ~reason:"v2 only\nsorry") with
  | Ok (Message.Reject r) -> checks "reject reason survives" "v2 only\nsorry" r
  | _ -> Alcotest.fail "reject must decode");
  List.iter
    (fun line ->
      checkb (Printf.sprintf "malformed hello %S" line) true
        (is_error (Message.decode_hello line)))
    [ ""; "HELLO"; "HELLO afex"; "HELLO afex x"; "HELLO smtp 1"; "RUN 1 a b" ];
  List.iter
    (fun line ->
      checkb (Printf.sprintf "malformed greeting %S" line) true
        (is_error (Message.decode_greeting line)))
    [ ""; "WELCOME"; "WELCOME afex nope"; "HELLO afex 1" ]

let test_serve_rejects_version_mismatch () =
  let client, server = Transport.pair ~recv_timeout_ms:2000 () in
  let manager = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let d = Domain.spawn (fun () -> RM.serve_connection manager server) in
  (match client.Transport.send (Message.encode_hello ~version:999) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e));
  (match Message.decode_greeting (get_ok "greeting" (client.Transport.recv ())) with
  | Ok (Message.Reject _) -> ()
  | _ -> Alcotest.fail "future protocol version must be rejected");
  client.Transport.close ();
  checkb "server reported the protocol error" true
    (match Domain.join d with Error (RM.Protocol _) -> true | _ -> false)

let test_wire_session_survives_garbage () =
  (* Full exchange against a live server domain: handshake, a garbage
     line (answered, connection survives), a real scenario, shutdown. *)
  let client, server = Transport.pair ~recv_timeout_ms:2000 () in
  let manager = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let d = Domain.spawn (fun () -> RM.serve_connection manager server) in
  let send line =
    match client.Transport.send line with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" (Transport.string_of_error e)
  in
  send (Message.encode_hello ~version:Message.protocol_version);
  (match Message.decode_greeting (get_ok "greeting" (client.Transport.recv ())) with
  | Ok (Message.Welcome v) -> checki "version" Message.protocol_version v
  | _ -> Alcotest.fail "expected WELCOME");
  send "complete nonsense";
  (match Message.decode_from_manager (get_ok "reply" (client.Transport.recv ())) with
  | Ok (Message.Manager_error { seq; _ }) -> checki "undecodable -> seq -1" (-1) seq
  | _ -> Alcotest.fail "garbage must be answered with a manager error");
  let scenario = List.hd (sample_scenarios 1) in
  send (Message.encode_to_manager (Message.Run_scenario { seq = 4; scenario }));
  (match Message.decode_from_manager (get_ok "reply" (client.Transport.recv ())) with
  | Ok (Message.Scenario_result r) ->
      checki "matching seq" 4 r.Message.seq;
      checki "managers send new_blocks 0" 0 r.Message.new_blocks
  | _ -> Alcotest.fail "expected a scenario result");
  send (Message.encode_to_manager Message.Shutdown);
  checkb "clean server exit" true (Domain.join d = Ok ());
  checki "the manager ran exactly one test" 1 (Node_manager.tests_run manager);
  client.Transport.close ()

(* --- from_manager codec: property round-trip --- *)

let statuses = [| Outcome.Passed; Outcome.Test_failed; Outcome.Crashed; Outcome.Hung |]

let random_report rng =
  let funcs = [| "read"; "write"; "malloc"; "\xc3\xa9crire_r\xc3\xa9seau"; "select" |] in
  let errnos = [| "EIO"; "ENOMEM"; "EINTR" |] in
  let frames =
    [|
      "";
      "main (a.c:1)";
      "frame with spaces";
      "comma,separated,frame";
      "embedded\nnewline";
      "100% r\xc3\xa9seau";
      "tab\there";
    |]
  in
  let pick a = a.(Rng.int rng (Array.length a)) in
  let stack () =
    match Rng.int rng 5 with
    | 0 -> None
    | 1 -> Some []
    | 2 -> Some [ "" ]
    | _ -> Some (List.init (1 + Rng.int rng 4) (fun _ -> pick frames))
  in
  {
    Message.seq = Rng.int rng 100_000;
    status = pick statuses;
    triggered = Rng.bernoulli rng 0.5;
    new_blocks = Rng.int rng 50;
    fault =
      Fault.make ~test_id:(Rng.int rng 50) ~func:(pick funcs)
        ~call_number:(Rng.int rng 6) ~errno:(pick errnos)
        ~retval:(Rng.int rng 3 - 1) ();
    coverage =
      List.sort_uniq compare (List.init (Rng.int rng 12) (fun _ -> Rng.int rng 400));
    injection_stack = stack ();
    crash_stack = stack ();
    duration_ms = (if Rng.bernoulli rng 0.1 then 0.0 else Rng.float rng 500.0);
  }

(* A failing codec bug used to print "case 73 of 200" and the full
   40-field report; the [Prop] harness shrinks to a minimal report (one
   field away from trivial) and prints the seed to replay it. *)
let report_arb =
  let trivial_fault =
    Fault.make ~test_id:0 ~func:"f" ~call_number:0 ~errno:"EIO" ~retval:0 ()
  in
  let shrink_stack r get set =
    match get r with
    | None -> []
    | Some [] -> [ set r None ]
    | Some (_ :: rest) -> [ set r None; set r (Some rest) ]
  in
  let shrink r =
    List.concat
      [
        (if r.Message.seq <> 0 then [ { r with Message.seq = 0 } ] else []);
        (if r.Message.status <> Outcome.Passed then
           [ { r with Message.status = Outcome.Passed } ]
         else []);
        (if r.Message.triggered then [ { r with Message.triggered = false } ]
         else []);
        (if r.Message.new_blocks <> 0 then [ { r with Message.new_blocks = 0 } ]
         else []);
        (if r.Message.duration_ms <> 0.0 then
           [ { r with Message.duration_ms = 0.0 } ]
         else []);
        (match r.Message.coverage with
        | [] -> []
        | _ :: rest ->
            [ { r with Message.coverage = [] }; { r with Message.coverage = rest } ]);
        shrink_stack r
          (fun r -> r.Message.injection_stack)
          (fun r s -> { r with Message.injection_stack = s });
        shrink_stack r
          (fun r -> r.Message.crash_stack)
          (fun r s -> { r with Message.crash_stack = s });
        (if r.Message.fault <> trivial_fault then
           [ { r with Message.fault = trivial_fault } ]
         else []);
      ]
  in
  let show r = Message.encode_from_manager (Message.Scenario_result r) in
  Prop.make ~shrink ~show random_report

let test_from_manager_roundtrip_property () =
  Prop.check ~count:200 ~seed:2026 "from_manager round-trip" report_arb (fun r ->
      let line = Message.encode_from_manager (Message.Scenario_result r) in
      (not (String.contains line '\n'))
      &&
      match Message.decode_from_manager line with
      | Ok (Message.Scenario_result r') -> r' = r
      | Ok (Message.Manager_error _) | Error _ -> false)

let test_manager_error_roundtrip () =
  List.iter
    (fun (seq, message) ->
      let line =
        Message.encode_from_manager (Message.Manager_error { seq; message })
      in
      match Message.decode_from_manager line with
      | Ok (Message.Manager_error { seq = seq'; message = message' }) ->
          checki "seq" seq seq';
          checks "message" message message'
      | _ -> Alcotest.failf "manager error %S did not round-trip" message)
    [
      (1, "plain failure");
      (-1, "could not decode the request");
      (7, "");
      (12, "multi\nline\nerror");
      (3, "r\xc3\xa9seau d\xc3\xa9connect\xc3\xa9 100%");
    ]

let test_from_manager_malformed () =
  List.iter
    (fun line ->
      checkb (Printf.sprintf "reject %S" line) true
        (is_error (Message.decode_from_manager line)))
    [
      "";
      "RESULT";
      "RESULT 1 P";
      "RESULT x P T 0 0x1p1 f @0: @0: @0:";  (* bad seq *)
      "RESULT 1 Q T 0 0x1p1 f @0: @0: @0:";  (* unknown status token *)
      "RESULT 1 P X 0 0x1p1 f @0: @0: @0:";  (* bad triggered flag *)
      "RESULT 1 P T zz 0x1p1 f @0: @0: @0:"; (* bad new_blocks *)
      "RESULT 1 P T 0 fast f @0: @0: @0:";   (* bad duration *)
      "RESULT 1 P T 0 0x1p1 f 3-1 @0: @0:";  (* descending coverage range *)
      "RESULT 1 P T 0 0x1p1 f -3 @0: @0:";   (* negative coverage *)
      "RESULT 1 P T 0 0x1p1 f 0,1 @nope: @0:"; (* bad stack count *)
      "ERROR";
      "ERROR x boom";
      "HELLO afex 1";
      "a perfectly ordinary sentence";
    ]

let test_to_manager_total () =
  (* Satellite: decode_to_manager must reject anything malformed. *)
  let scenario = List.hd (sample_scenarios 1) in
  let line = Message.encode_to_manager (Message.Run_scenario { seq = 9; scenario }) in
  (match Message.decode_to_manager line with
  | Ok (Message.Run_scenario r) ->
      checki "seq" 9 r.seq;
      checks "scenario" (Scenario.to_string scenario) (Scenario.to_string r.scenario)
  | _ -> Alcotest.fail "RUN must round-trip");
  checkb "shutdown round-trips" true
    (Message.decode_to_manager (Message.encode_to_manager Message.Shutdown)
    = Ok Message.Shutdown);
  List.iter
    (fun line ->
      checkb
        (Printf.sprintf "reject %S" (String.sub line 0 (min 30 (String.length line))))
        true
        (is_error (Message.decode_to_manager line)))
    [
      "";
      " ";
      "RUN";
      "RUN 1";
      "RUN x read 1";
      "RUN -2 read 1";
      "WALK 1 read 1";
      "RUN 1 " ^ String.make (Message.max_line + 1) 'a';
    ]

let test_coverage_ranges () =
  let base = random_report (Rng.create 5) in
  List.iter
    (fun coverage ->
      let r = { base with Message.coverage } in
      match Message.decode_from_manager
              (Message.encode_from_manager (Message.Scenario_result r))
      with
      | Ok (Message.Scenario_result r') ->
          checkb "coverage round-trips" true (r'.Message.coverage = coverage)
      | _ -> Alcotest.fail "coverage variant did not decode")
    [
      [];
      [ 0 ];
      [ 399 ];
      [ 0; 1; 2; 3; 4 ];
      [ 7; 9; 11 ];
      [ 0; 1; 2; 50; 51; 52; 53; 400 ];
    ]

let test_outcome_report_roundtrip () =
  let exec = executor () in
  let total_blocks = exec.Afex.Executor.total_blocks in
  List.iter
    (fun scenario ->
      let outcome = exec.Afex.Executor.run_scenario scenario in
      let report = Message.report_of_outcome ~seq:1 outcome in
      match Message.outcome_of_report ~total_blocks report with
      | Ok rebuilt ->
          checkb "outcome rebuilt bit-for-bit" true (outcome_equal outcome rebuilt)
      | Error m -> Alcotest.failf "outcome_of_report: %s" m)
    (sample_scenarios 10);
  (* Coverage indices outside the explorer's bitset must not crash. *)
  let report =
    { (random_report (Rng.create 3)) with Message.coverage = [ 0; 99_999 ] }
  in
  checkb "out-of-range coverage is a typed error" true
    (is_error (Message.outcome_of_report ~total_blocks:100 report))

(* --- the remote-manager proxy over the loopback --- *)

let test_loopback_outcome_equality () =
  let exec = executor () in
  let lb = RM.Loopback.create ~executor:exec () in
  let rm = RM.create (RM.Loopback.spec lb) ~total_blocks:exec.Afex.Executor.total_blocks in
  List.iter
    (fun scenario ->
      let remote = get_ok "run_scenario" (RM.run_scenario rm scenario) in
      let local = exec.Afex.Executor.run_scenario scenario in
      checkb "remote outcome equals local outcome" true (outcome_equal remote local))
    (sample_scenarios 20);
  let s = RM.stats rm in
  checki "20 requests" 20 s.RM.requests;
  checki "no retries on a clean wire" 0 s.RM.retries;
  checki "one dial" 1 s.RM.dials;
  RM.close rm;
  RM.Loopback.shutdown lb;
  checki "exactly one connection was made" 1 (RM.Loopback.connections lb)

let test_loopback_manager_error_not_retried () =
  let failing =
    Afex.Executor.of_scenario_fn ~total_blocks:10 ~description:"always fails"
      (fun _ -> invalid_arg "executor exploded")
  in
  let lb = RM.Loopback.create ~executor:failing () in
  let rm = RM.create (RM.Loopback.spec lb) ~total_blocks:10 in
  let scenario = List.hd (sample_scenarios 1) in
  (match RM.run_scenario rm scenario with
  | Error (RM.Manager m) ->
      checkb "the manager's message survives" true
        (m = "executor exploded")
  | _ -> Alcotest.fail "a manager-side failure must surface as Manager");
  let s = RM.stats rm in
  checki "manager errors are deterministic: no retry" 0 s.RM.retries;
  checki "counted" 1 s.RM.manager_errors;
  RM.close rm;
  RM.Loopback.shutdown lb

(* --- chaos: the dispatcher under transport fault injection --- *)

let mild_chaos =
  {
    Transport.drop = 0.15;
    duplicate = 0.15;
    truncate = 0.05;
    bitflip = 0.1;
    garbage = 0.1;
  }

let run_under_chaos ~chaos_to_server ~chaos_to_client ~seed =
  let exec = executor () in
  let lb =
    RM.Loopback.create ?chaos_to_server ?chaos_to_client ~chaos_seed:seed
      ~recv_timeout_ms:40 ~executor:exec ()
  in
  let rm =
    RM.create
      (RM.Loopback.spec ~max_attempts:10 ~backoff_ms:0.2 lb)
      ~total_blocks:exec.Afex.Executor.total_blocks
  in
  let scenarios = sample_scenarios 15 in
  List.iter
    (fun scenario ->
      let remote = get_ok "run under chaos" (RM.run_scenario rm scenario) in
      let local = exec.Afex.Executor.run_scenario scenario in
      checkb "chaos never corrupts an accepted outcome" true
        (outcome_equal remote local))
    scenarios;
  let s = RM.stats rm in
  RM.close rm;
  RM.Loopback.shutdown lb;
  s

let test_chaos_on_requests () =
  let s =
    run_under_chaos
      ~chaos_to_server:(Some { mild_chaos with Transport.bitflip = 0.2 })
      ~chaos_to_client:None ~seed:11
  in
  checki "all requests accounted" 15 s.RM.requests;
  checkb "corruption forced retries" true (s.RM.retries > 0);
  checkb "reconnects happened" true (s.RM.dials > 1)

let test_chaos_on_replies () =
  let s =
    run_under_chaos ~chaos_to_server:None
      ~chaos_to_client:(Some mild_chaos) ~seed:23
  in
  checki "all requests accounted" 15 s.RM.requests;
  checkb "corrupted replies forced retries" true (s.RM.retries > 0)

let test_chaos_blackout_is_bounded () =
  (* A wire that delivers nothing: the proxy must fail with a typed error
     after its retry budget — never hang, never fake an outcome. *)
  let exec = executor () in
  let lb =
    RM.Loopback.create
      ~chaos_to_server:{ Transport.no_chaos with Transport.drop = 1.0 }
      ~recv_timeout_ms:30 ~executor:exec ()
  in
  let rm =
    RM.create
      (RM.Loopback.spec ~max_attempts:3 ~backoff_ms:0.2 lb)
      ~total_blocks:exec.Afex.Executor.total_blocks
  in
  (match RM.run_scenario rm (List.hd (sample_scenarios 1)) with
  | Error (RM.Exhausted { attempts; _ }) -> checki "budget respected" 3 attempts
  | Error _ -> Alcotest.fail "expected Exhausted after the retry budget"
  | Ok _ -> Alcotest.fail "a dead wire cannot produce an outcome");
  RM.close rm;
  RM.Loopback.shutdown lb

(* --- the pool with remote workers --- *)

let pool_history ?remotes ~jobs ~seed () =
  let exec = executor () in
  let result, stats =
    Pool.run ?remotes ~jobs ~batch_size:16 ~iterations:150
      (Config.fitness_guided ~seed ())
      (Apache.space ()) (Pool.Pure exec)
  in
  (history result, stats)

let test_pool_remote_only_matches_local () =
  let exec = executor () in
  let lb = RM.Loopback.create ~executor:exec () in
  let remote, stats =
    pool_history ~remotes:[ RM.Loopback.spec lb ] ~jobs:0 ~seed:41 ()
  in
  RM.Loopback.shutdown lb;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "remote-only history equals in-process history" true (remote = local);
  checkb "everything went over the wire" true (stats.Pool.remote_runs > 0);
  checki "no fallbacks on a clean wire" 0 stats.Pool.remote_fallbacks

let test_pool_mixed_matches_local () =
  let exec = executor () in
  let lb1 = RM.Loopback.create ~name:"lb1" ~executor:exec () in
  let lb2 = RM.Loopback.create ~name:"lb2" ~executor:exec () in
  let mixed, stats =
    pool_history
      ~remotes:[ RM.Loopback.spec lb1; RM.Loopback.spec lb2 ]
      ~jobs:2 ~seed:41 ()
  in
  RM.Loopback.shutdown lb1;
  RM.Loopback.shutdown lb2;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "mixed local+remote history equals in-process history" true
    (mixed = local);
  checkb "remotes participated" true (stats.Pool.remote_runs > 0)

let test_pool_chaotic_remote_matches_local () =
  let exec = executor () in
  let lb =
    RM.Loopback.create ~chaos_to_server:mild_chaos ~chaos_to_client:mild_chaos
      ~chaos_seed:17 ~recv_timeout_ms:40 ~executor:exec ()
  in
  let chaotic, _ =
    pool_history
      ~remotes:[ RM.Loopback.spec ~max_attempts:8 ~backoff_ms:0.2 lb ]
      ~jobs:1 ~seed:41 ()
  in
  RM.Loopback.shutdown lb;
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "a byzantine wire cannot change the explored history" true
    (chaotic = local)

let test_pool_dead_remote_falls_back () =
  let dead =
    RM.spec ~max_attempts:2 ~backoff_ms:0.1 ~name:"unreachable" (fun () ->
        Error (Transport.Io "connection refused"))
  in
  let with_dead, stats = pool_history ~remotes:[ dead ] ~jobs:1 ~seed:41 () in
  let local, _ = pool_history ~jobs:1 ~seed:41 () in
  checkb "every scenario was recovered locally" true (with_dead = local);
  checki "nothing ran over the wire" 0 stats.Pool.remote_runs;
  checkb "the fallback path was exercised" true (stats.Pool.remote_fallbacks > 0)

let test_pool_rejects_bad_worker_mix () =
  let exec () = Pool.Pure (executor ()) in
  checkb "negative jobs rejected" true
    (try ignore (Pool.create ~jobs:(-1) (exec ())); false
     with Invalid_argument _ -> true);
  checkb "zero workers rejected" true
    (try ignore (Pool.create ~jobs:0 (exec ())); false
     with Invalid_argument _ -> true);
  let lb = RM.Loopback.create ~executor:(executor ()) () in
  let pool = Pool.create ~remotes:[ RM.Loopback.spec lb ] ~jobs:0 (exec ()) in
  checki "jobs 0 with a remote is a valid pool" 0 (Pool.jobs pool);
  Pool.shutdown pool;
  RM.Loopback.shutdown lb

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("frame round-trip", test_frame_roundtrip);
      ("frame survives byte-wise delivery", test_frame_incremental);
      ("multiple frames per feed", test_frame_multiple_per_feed);
      ("bad magic is corrupt", test_frame_bad_magic);
      ("oversized frames are typed errors", test_frame_oversized);
      ("checksum catches bit flips", test_frame_checksum);
      ("socketpair round-trip", test_pair_roundtrip);
      ("receive timeout", test_recv_timeout);
      ("closed and truncated peers", test_closed_and_truncated_peer);
      ("chaos mangler is seeded", test_chaos_mangler_deterministic);
      ("handshake codec", test_handshake_codec);
      ("version mismatch is rejected", test_serve_rejects_version_mismatch);
      ("wire session survives garbage", test_wire_session_survives_garbage);
      ("from_manager round-trip (property)", test_from_manager_roundtrip_property);
      ("manager errors round-trip", test_manager_error_roundtrip);
      ("from_manager rejects malformed lines", test_from_manager_malformed);
      ("to_manager is total", test_to_manager_total);
      ("coverage range codec", test_coverage_ranges);
      ("outcome <-> report round-trip", test_outcome_report_roundtrip);
      ("loopback outcome equality", test_loopback_outcome_equality);
      ("manager errors are not retried", test_loopback_manager_error_not_retried);
      ("chaos on requests", test_chaos_on_requests);
      ("chaos on replies", test_chaos_on_replies);
      ("total blackout is bounded", test_chaos_blackout_is_bounded);
      ("pool: remote-only matches local", test_pool_remote_only_matches_local);
      ("pool: mixed matches local", test_pool_mixed_matches_local);
      ("pool: chaotic remote matches local", test_pool_chaotic_remote_matches_local);
      ("pool: dead remote falls back", test_pool_dead_remote_falls_back);
      ("pool: rejects bad worker mix", test_pool_rejects_bad_worker_mix);
    ]
