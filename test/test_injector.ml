(* Tests for afex_injector: fault encoding, execution semantics of the
   engine, sensors, and the plugin layer. *)

module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Engine = Afex_injector.Engine
module Sensor = Afex_injector.Sensor
module Plugin = Afex_injector.Plugin
module Behavior = Afex_simtarget.Behavior
module Callsite = Afex_simtarget.Callsite
module Sim_test = Afex_simtarget.Sim_test
module Target = Afex_simtarget.Target
module Bitset = Afex_stats.Bitset
module Rng = Afex_stats.Rng
module Subspace = Afex_faultspace.Subspace
module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* A hand-built micro target with one site per behaviour:
     site 0: read, Handled (recovery block 8)
     site 1: close, Test_fails (recovery block 9)
     site 2: write, Crash (plain)
     site 3: malloc, Crash in recovery (recovery block 10)
     site 4: fgets, Hang
   Test 0 trace: [0; 1; 0; 2; 3; 4]  (read, close, read, write, malloc, fgets)
   Blocks: site i owns block i (normal), recovery as above. *)
let micro_target =
  let site id func behavior recovery =
    Callsite.make ~id ~module_name:"m" ~func ~location:(Printf.sprintf "m.c:%d" (10 + id))
      ~stack:[ Printf.sprintf "op%d (m.c:%d)" id (10 + id); "main" ]
      ~blocks:[| id |] ~recovery_blocks:recovery ~behavior
  in
  let callsites =
    [|
      site 0 "read" (Behavior.always Behavior.Handled) [| 8 |];
      site 1 "close" (Behavior.always Behavior.Test_fails) [| 9 |];
      site 2 "write" (Behavior.always (Behavior.Crash { in_recovery = false })) [||];
      site 3 "malloc" (Behavior.always (Behavior.Crash { in_recovery = true })) [| 10 |];
      site 4 "fgets" (Behavior.always Behavior.Hang) [||];
    |]
  in
  let tests =
    [| Sim_test.make ~id:0 ~name:"t0" ~group:"g" ~trace:[| 0; 1; 0; 2; 3; 4 |] ~duration_ms:60.0 |]
  in
  Target.make ~name:"micro" ~version:"1" ~callsites ~tests ~total_blocks:11

let run ?nondet fault = Engine.run ?nondet micro_target fault
let fault ?errno ?retval func n = Fault.make ~test_id:0 ~func ~call_number:n ?errno ?retval ()

let covered o = Bitset.to_list o.Outcome.coverage

(* --- Fault encoding --- *)

let test_fault_defaults () =
  let f = fault "malloc" 1 in
  checks "default errno" "ENOMEM" f.Fault.errno;
  checki "default retval" 0 f.Fault.retval;
  let g = fault "frobnicate" 1 in
  checks "unknown func errno" "EIO" g.Fault.errno

let test_fault_scenario_roundtrip () =
  let f = Fault.make ~test_id:3 ~func:"read" ~call_number:7 ~errno:"EIO" ~retval:(-1) () in
  match Fault.of_scenario (Fault.to_scenario f) with
  | Ok f' -> checkb "round-trip" true (Fault.equal f f')
  | Error e -> Alcotest.fail e

let test_fault_scenario_missing_field () =
  checkb "missing testId" true
    (Result.is_error (Fault.of_scenario [ ("function", Afex_faultspace.Value.Sym "read") ]))

(* --- Engine semantics --- *)

let test_no_injection_call_zero () =
  let o = run (fault "read" 0) in
  checkb "not triggered" false o.Outcome.triggered;
  checkb "passed" true (o.Outcome.status = Outcome.Passed);
  Alcotest.(check (list int)) "full normal coverage" [ 0; 1; 2; 3; 4 ] (covered o);
  checkf "nominal duration" 60.0 o.Outcome.duration_ms

let test_no_injection_beyond_count () =
  let o = run (fault "read" 3) in
  checkb "third read never happens" false o.Outcome.triggered;
  checkb "passes" true (o.Outcome.status = Outcome.Passed)

let test_no_injection_unknown_function () =
  let o = run (fault "socket" 1) in
  checkb "not triggered" false o.Outcome.triggered

let test_handled_fault () =
  let o = run (fault "read" 1) in
  checkb "triggered" true o.Outcome.triggered;
  checkb "still passes" true (o.Outcome.status = Outcome.Passed);
  checkb "recovery block covered" true (List.mem 8 (covered o));
  checkb "rest of test ran" true (List.mem 4 (covered o));
  (match o.Outcome.injection_stack with
  | Some (top :: _) -> checks "libc frame" "libc.so:read" top
  | Some [] | None -> Alcotest.fail "expected injection stack");
  checkb "no crash stack" true (o.Outcome.crash_stack = None)

let test_test_fails_fault () =
  let o = run (fault "close" 1) in
  checkb "failed" true (o.Outcome.status = Outcome.Test_failed);
  checkb "counts as failed" true (Outcome.failed o);
  checkb "recovery covered" true (List.mem 9 (covered o));
  checkb "later blocks not covered" false (List.mem 4 (covered o));
  checkb "earlier blocks covered" true (List.mem 0 (covered o));
  checkb "duration truncated" true (o.Outcome.duration_ms < 60.0)

let test_plain_crash () =
  let o = run (fault "write" 1) in
  checkb "crashed" true (o.Outcome.status = Outcome.Crashed);
  (match o.Outcome.crash_stack with
  | Some (top :: _) -> checks "crash at libc frame" "libc.so:write" top
  | Some [] | None -> Alcotest.fail "expected crash stack");
  checkb "no recovery blocks" false (List.mem 10 (covered o))

let test_crash_in_recovery () =
  let o = run (fault "malloc" 1) in
  checkb "crashed" true (o.Outcome.status = Outcome.Crashed);
  (match o.Outcome.crash_stack with
  | Some (top :: _) ->
      checkb "recovery frame on top" true
        (String.length top > 9 && String.sub top 0 9 = "recovery@")
  | Some [] | None -> Alcotest.fail "expected crash stack");
  checkb "recovery blocks covered before crash" true (List.mem 10 (covered o))

let test_hang_charged_timeout () =
  let o = run (fault "fgets" 1) in
  checkb "hung" true (o.Outcome.status = Outcome.Hung);
  checkf "timeout factor" (60.0 *. Engine.hang_timeout_factor) o.Outcome.duration_ms

let test_second_call_distinct_site () =
  (* The 2nd read is trace position 2 (same site 0 here, but the coverage
     prefix is longer than for the 1st call). *)
  let o1 = run (fault "read" 1) in
  let o2 = run (fault "read" 2) in
  checkb "both triggered" true (o1.Outcome.triggered && o2.Outcome.triggered);
  checkb "same stack (same site)" true
    (o1.Outcome.injection_stack = o2.Outcome.injection_stack)

let test_bad_test_id () =
  checkb "test id validated" true
    (try ignore (Engine.run micro_target (Fault.make ~test_id:9 ~func:"read" ~call_number:1 ())); false
     with Invalid_argument _ -> true)

let test_nondet_dodge () =
  (* dodge probability 1: a crash is always observed as a clean failure. *)
  let nondet = { Engine.rng = Rng.create 1; dodge_probability = 1.0 } in
  let o = Engine.run ~nondet micro_target (fault "write" 1) in
  checkb "crash dodged to failure" true (o.Outcome.status = Outcome.Test_failed);
  let o2 = Engine.run ~nondet micro_target (fault "close" 1) in
  checkb "failure dodged to pass" true (o2.Outcome.status = Outcome.Passed)

let test_nondet_zero_is_deterministic () =
  let nondet = { Engine.rng = Rng.create 1; dodge_probability = 0.0 } in
  let o = Engine.run ~nondet micro_target (fault "write" 1) in
  checkb "no dodge at p=0" true (o.Outcome.status = Outcome.Crashed)

let test_baseline_and_suite_coverage () =
  let o = Engine.baseline micro_target 0 in
  checkb "baseline passes" true (o.Outcome.status = Outcome.Passed);
  checki "suite coverage counts normal blocks" 5
    (Bitset.count (Engine.suite_coverage micro_target))

let test_errno_changes_reaction () =
  (* Build a site that only crashes on ENOMEM. *)
  let callsites =
    [|
      Callsite.make ~id:0 ~module_name:"m" ~func:"read" ~location:"m.c:1"
        ~stack:[ "f"; "main" ] ~blocks:[| 0 |] ~recovery_blocks:[| 1 |]
        ~behavior:
          (Behavior.with_errno Behavior.Handled
             [ ("EIO", Behavior.Crash { in_recovery = false }) ]);
    |]
  in
  let tests = [| Sim_test.make ~id:0 ~name:"t" ~group:"g" ~trace:[| 0 |] ~duration_ms:1.0 |] in
  let t = Target.make ~name:"e" ~version:"1" ~callsites ~tests ~total_blocks:2 in
  let benign = Engine.run t (Fault.make ~test_id:0 ~func:"read" ~call_number:1 ~errno:"EINTR" ()) in
  checkb "EINTR handled" true (benign.Outcome.status = Outcome.Passed);
  let crash = Engine.run t (Fault.make ~test_id:0 ~func:"read" ~call_number:1 ~errno:"EIO" ()) in
  checkb "EIO crashes" true (crash.Outcome.status = Outcome.Crashed)

(* --- Sensors --- *)

let obs status new_blocks =
  let o = run (fault "read" 0) in
  { Sensor.outcome = { o with Outcome.status }; new_blocks }

let test_sensor_standard_weights () =
  let s = Sensor.standard () in
  checkf "passed scores coverage only" 7.0 (s.Sensor.score (obs Outcome.Passed 7));
  checkf "failure adds 10" 10.0 (s.Sensor.score (obs Outcome.Test_failed 0));
  checkf "crash adds 30" 30.0 (s.Sensor.score (obs Outcome.Crashed 0));
  checkf "hang adds 40" 40.0 (s.Sensor.score (obs Outcome.Hung 0))

let test_sensor_custom_weights () =
  let s = Sensor.standard ~block_weight:0.0 ~fail_weight:1.0 ~crash_weight:99.0 () in
  checkf "custom crash weight" 100.0 (s.Sensor.score (obs Outcome.Crashed 50))

let test_sensor_composition () =
  let s = Sensor.weighted ~name:"mix" [ (Sensor.coverage_only, 2.0); (Sensor.failure_only, 5.0) ] in
  checkf "weighted sum" (2.0 *. 3.0 +. 5.0) (s.Sensor.score (obs Outcome.Crashed 3))

let test_sensor_relevance () =
  let s =
    Sensor.relevance_weighted Sensor.failure_only ~func_weight:(fun f ->
        if String.equal f "read" then 0.5 else 1.0)
  in
  (* The observation's fault is read (from the micro target run). *)
  checkf "scaled by func weight" 0.5 (s.Sensor.score (obs Outcome.Test_failed 0))

(* --- Plugin --- *)

let std_sub =
  Subspace.make
    [
      Axis.range "testId" ~lo:0 ~hi:4;
      Axis.symbols "function" [ "malloc"; "read" ];
      Axis.range "callNumber" ~lo:0 ~hi:3;
    ]

let test_plugin_fault_of_point () =
  match Plugin.fault_of_point std_sub (Point.of_list [ 2; 1; 3 ]) with
  | Ok f ->
      checki "testId" 2 f.Fault.test_id;
      checks "function" "read" f.Fault.func;
      checki "call" 3 f.Fault.call_number;
      checks "errno from profile" "EINTR" f.Fault.errno
  | Error e -> Alcotest.fail e

let test_plugin_point_of_fault_roundtrip () =
  Seq.iter
    (fun p ->
      let f = Plugin.fault_of_point_exn std_sub p in
      match Plugin.point_of_fault std_sub f with
      | Some p' -> checkb "round-trip" true (Point.equal p p')
      | None -> Alcotest.fail "no inverse")
    (Subspace.enumerate std_sub)

let test_plugin_with_errno_axis () =
  let sub =
    Subspace.make
      [
        Axis.range "testId" ~lo:0 ~hi:1;
        Axis.symbols "function" [ "read" ];
        Axis.symbols "errno" [ "EIO"; "EAGAIN" ];
        Axis.range "callNumber" ~lo:1 ~hi:2;
      ]
  in
  match Plugin.fault_of_point sub (Point.of_list [ 0; 0; 1; 0 ]) with
  | Ok f -> checks "errno from axis" "EAGAIN" f.Fault.errno
  | Error e -> Alcotest.fail e


(* --- Multifault --- *)

module Multifault = Afex_injector.Multifault

(* A target with a latent compound bug:
     site 0: read, Handled           (recovery block 4)
     site 1: write, Crash_if_recovering (recovery block 5)
     site 2: close, Test_fails       (recovery block 6)
   Test 0 trace: [0; 1; 2]  *)
let latent_target =
  let site id func behavior recovery =
    Callsite.make ~id ~module_name:"m" ~func ~location:(Printf.sprintf "m.c:%d" (20 + id))
      ~stack:[ Printf.sprintf "op%d" id; "main" ] ~blocks:[| id |]
      ~recovery_blocks:recovery ~behavior
  in
  let callsites =
    [|
      site 0 "read" (Behavior.always Behavior.Handled) [| 4 |];
      site 1 "write" (Behavior.always Behavior.Crash_if_recovering) [| 5 |];
      site 2 "close" (Behavior.always Behavior.Test_fails) [| 6 |];
    |]
  in
  let tests =
    [| Sim_test.make ~id:0 ~name:"t" ~group:"g" ~trace:[| 0; 1; 2 |] ~duration_ms:30.0 |]
  in
  Target.make ~name:"latent" ~version:"1" ~callsites ~tests ~total_blocks:7

let test_multifault_scenario_roundtrip () =
  let mf = Multifault.make ~test_id:3 ~arms:[ ("read", 2); ("malloc", 7) ] in
  match Multifault.of_scenario (Multifault.to_scenario mf) with
  | Ok mf' -> checkb "round-trip" true (mf = mf')
  | Error e -> Alcotest.fail e

let test_multifault_of_faults () =
  let f1 = Fault.make ~test_id:1 ~func:"read" ~call_number:1 () in
  let f2 = Fault.make ~test_id:1 ~func:"write" ~call_number:2 () in
  (match Multifault.of_faults [ f1; f2 ] with
  | Ok mf ->
      checki "two arms" 2 (List.length mf.Multifault.arms);
      checkb "faults round-trip" true (Multifault.to_faults mf = [ f1; f2 ])
  | Error e -> Alcotest.fail e);
  let f3 = Fault.make ~test_id:2 ~func:"close" ~call_number:1 () in
  checkb "mixed tests rejected" true (Result.is_error (Multifault.of_faults [ f1; f3 ]));
  checkb "empty rejected" true (Result.is_error (Multifault.of_faults []))

let test_multifault_suffixed_scenario () =
  (* Compound-space attribute names carry suffixes. *)
  let scenario =
    [
      ("testId", Afex_faultspace.Value.Int 0);
      ("function", Afex_faultspace.Value.Sym "read");
      ("callNumber", Afex_faultspace.Value.Int 1);
      ("function2", Afex_faultspace.Value.Sym "write");
      ("callNumber2", Afex_faultspace.Value.Int 1);
    ]
  in
  match Multifault.of_scenario scenario with
  | Ok mf ->
      checki "two arms" 2 (List.length mf.Multifault.arms);
      checks "second arm func" "write"
        (List.nth mf.Multifault.arms 1).Multifault.func
  | Error e -> Alcotest.fail e

let test_multifault_of_scenario_errors () =
  let open Afex_faultspace in
  let err scenario =
    match Multifault.of_scenario scenario with
    | Error e -> e
    | Ok _ -> Alcotest.fail "undecodable scenario accepted"
  in
  (* Per-arm attributes before any "function" binding opened a group. *)
  checks "dangling callNumber" "callNumber before any function"
    (err [ ("testId", Value.Int 0); ("callNumber", Value.Int 1) ]);
  checks "dangling suffixed callNumber" "callNumber2 before any function"
    (err [ ("testId", Value.Int 0); ("callNumber2", Value.Int 1) ]);
  checks "dangling errno" "errno before any function"
    (err [ ("testId", Value.Int 0); ("errno", Value.Sym "EIO") ]);
  checks "dangling retval" "retval before any function"
    (err [ ("testId", Value.Int 0); ("retval", Value.Int (-1)) ]);
  (* Structurally empty scenarios. *)
  checks "missing testId" "missing testId"
    (err [ ("function", Value.Sym "read"); ("callNumber", Value.Int 1) ]);
  checks "empty arm list" "no fault arms" (err [ ("testId", Value.Int 0) ]);
  checks "empty scenario" "missing testId" (err []);
  (* Unknown names, and known names carrying the wrong value shape, both
     fall through to the same rejection. *)
  checks "unknown attribute" "unexpected attribute bogus"
    (err
       [
         ("testId", Value.Int 0);
         ("function", Value.Sym "read");
         ("bogus", Value.Sym "x");
       ]);
  checks "ill-typed callNumber" "unexpected attribute callNumber"
    (err
       [
         ("testId", Value.Int 0);
         ("function", Value.Sym "read");
         ("callNumber", Value.Sym "one");
       ]);
  checks "ill-typed function" "unexpected attribute function"
    (err [ ("testId", Value.Int 0); ("function", Value.Int 3) ]);
  (* The error reported is the first one encountered, even when a valid
     arm follows. *)
  checks "first error wins" "errno before any function"
    (err
       [
         ("testId", Value.Int 0);
         ("errno", Value.Sym "EIO");
         ("function", Value.Sym "read");
       ])

let test_multifault_of_faults_errors () =
  let f1 = Fault.make ~test_id:1 ~func:"read" ~call_number:1 () in
  let f3 = Fault.make ~test_id:2 ~func:"close" ~call_number:1 () in
  (match Multifault.of_faults [] with
  | Error e -> checks "empty message" "empty fault list" e
  | Ok _ -> Alcotest.fail "empty fault list accepted");
  (match Multifault.of_faults [ f1; f3 ] with
  | Error e -> checks "mixed message" "multi-fault scenario spans several tests" e
  | Ok _ -> Alcotest.fail "mixed test ids accepted");
  (* Mixed ids are rejected wherever the intruder sits. *)
  checkb "mixed ids rejected in any position" true
    (Result.is_error (Multifault.of_faults [ f1; f1; f3 ])
    && Result.is_error (Multifault.of_faults [ f3; f1; f1 ]));
  (* A single fault is a valid (degenerate) multi-fault scenario. *)
  match Multifault.of_faults [ f1 ] with
  | Ok mf ->
      checki "one arm" 1 (List.length mf.Multifault.arms);
      checkb "round-trips" true (Multifault.to_faults mf = [ f1 ])
  | Error e -> Alcotest.fail e

let test_multifault_single_probe_misses_latent () =
  (* Each single fault alone: read handled, write handled (not recovering),
     close fails cleanly — no crash anywhere. *)
  List.iter
    (fun func ->
      let o = Engine.run latent_target (Fault.make ~test_id:0 ~func ~call_number:1 ()) in
      checkb (func ^ " never crashes alone") false (o.Outcome.status = Outcome.Crashed))
    [ "read"; "write"; "close" ]

let test_multifault_compound_triggers_latent () =
  let mf = Multifault.make ~test_id:0 ~arms:[ ("read", 1); ("write", 1) ] in
  let o = Multifault.run latent_target mf in
  checkb "crashes under compound load" true (o.Outcome.status = Outcome.Crashed);
  (match o.Outcome.crash_stack with
  | Some (top :: _) ->
      checkb "crash inside recovery" true
        (String.length top > 9 && String.sub top 0 9 = "recovery@")
  | Some [] | None -> Alcotest.fail "expected crash stack");
  checks "terminal fault is the write arm" "write" o.Outcome.fault.Fault.func;
  (* Both recovery paths ran before the crash. *)
  checkb "first recovery covered" true (Bitset.mem o.Outcome.coverage 4);
  checkb "latent recovery covered" true (Bitset.mem o.Outcome.coverage 5)

let test_multifault_order_matters () =
  (* write fault first (no recovery in flight yet -> handled), then the
     read fault is handled too: the run passes. *)
  let mf = Multifault.make ~test_id:0 ~arms:[ ("write", 1) ] in
  let o = Multifault.run latent_target mf in
  checkb "write alone handled" true (o.Outcome.status = Outcome.Passed)

let test_multifault_terminal_stops_trace () =
  (* close fails the test before any later events would run. *)
  let mf = Multifault.make ~test_id:0 ~arms:[ ("close", 1) ] in
  let o = Multifault.run latent_target mf in
  checkb "test failed" true (o.Outcome.status = Outcome.Test_failed);
  checkb "close recovery covered" true (Bitset.mem o.Outcome.coverage 6)

let test_multifault_no_trigger_passes () =
  let mf = Multifault.make ~test_id:0 ~arms:[ ("read", 9) ] in
  let o = Multifault.run latent_target mf in
  checkb "passes" true (o.Outcome.status = Outcome.Passed);
  checkb "not triggered" false o.Outcome.triggered

let test_multifault_validation () =
  checkb "empty arms rejected" true
    (try ignore (Multifault.run latent_target { Multifault.test_id = 0; arms = [] }); false
     with Invalid_argument _ -> true);
  let mf = Multifault.make ~test_id:9 ~arms:[ ("read", 1) ] in
  checkb "bad test id rejected" true
    (try ignore (Multifault.run latent_target mf); false
     with Invalid_argument _ -> true)

let test_multifault_agrees_with_engine_on_single () =
  (* A one-arm multifault must agree with the single-fault engine on the
     micro target for every behaviour kind. *)
  List.iter
    (fun (func, n) ->
      let fault = Fault.make ~test_id:0 ~func ~call_number:n () in
      let single = Engine.run micro_target fault in
      let multi =
        Multifault.run micro_target
          { Multifault.test_id = 0; arms = [ Multifault.{ func; call_number = n; errno = fault.Fault.errno; retval = fault.Fault.retval } ] }
      in
      checkb (func ^ " same status") true (single.Outcome.status = multi.Outcome.status);
      checkb (func ^ " same coverage") true
        (Bitset.equal single.Outcome.coverage multi.Outcome.coverage))
    [ ("read", 1); ("close", 1); ("write", 1); ("malloc", 1); ("fgets", 1); ("read", 9) ]

let test_plugin_multifault_of_point () =
  let sub =
    Subspace.make
      [
        Axis.range "testId" ~lo:0 ~hi:4;
        Axis.symbols "function" [ "read"; "write" ];
        Axis.range "callNumber" ~lo:1 ~hi:3;
        Axis.symbols "function2" [ "read"; "write" ];
        Axis.range "callNumber2" ~lo:1 ~hi:3;
      ]
  in
  match Plugin.multifault_of_point sub (Point.of_list [ 2; 0; 1; 1; 2 ]) with
  | Ok mf ->
      checki "test id" 2 mf.Multifault.test_id;
      checki "two arms" 2 (List.length mf.Multifault.arms);
      checks "arm1" "read" (List.nth mf.Multifault.arms 0).Multifault.func;
      checki "arm2 call" 3 (List.nth mf.Multifault.arms 1).Multifault.call_number
  | Error e -> Alcotest.fail e

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("fault defaults", test_fault_defaults);
      ("fault scenario roundtrip", test_fault_scenario_roundtrip);
      ("fault scenario missing field", test_fault_scenario_missing_field);
      ("no injection: call 0", test_no_injection_call_zero);
      ("no injection: beyond count", test_no_injection_beyond_count);
      ("no injection: unknown function", test_no_injection_unknown_function);
      ("handled fault", test_handled_fault);
      ("test-fails fault", test_test_fails_fault);
      ("plain crash", test_plain_crash);
      ("crash in recovery", test_crash_in_recovery);
      ("hang charged timeout", test_hang_charged_timeout);
      ("second call same site", test_second_call_distinct_site);
      ("bad test id", test_bad_test_id);
      ("nondeterministic dodge", test_nondet_dodge);
      ("nondet p=0 deterministic", test_nondet_zero_is_deterministic);
      ("baseline and suite coverage", test_baseline_and_suite_coverage);
      ("errno changes reaction", test_errno_changes_reaction);
      ("sensor standard weights", test_sensor_standard_weights);
      ("sensor custom weights", test_sensor_custom_weights);
      ("sensor composition", test_sensor_composition);
      ("sensor relevance", test_sensor_relevance);
      ("plugin fault_of_point", test_plugin_fault_of_point);
      ("plugin point/fault roundtrip", test_plugin_point_of_fault_roundtrip);
      ("plugin errno axis", test_plugin_with_errno_axis);
      ("multifault scenario roundtrip", test_multifault_scenario_roundtrip);
      ("multifault of_faults", test_multifault_of_faults);
      ("multifault suffixed scenario", test_multifault_suffixed_scenario);
      ("multifault of_scenario error paths", test_multifault_of_scenario_errors);
      ("multifault of_faults error paths", test_multifault_of_faults_errors);
      ("multifault: single probes miss latent bug", test_multifault_single_probe_misses_latent);
      ("multifault: compound triggers latent bug", test_multifault_compound_triggers_latent);
      ("multifault: order matters", test_multifault_order_matters);
      ("multifault: terminal stops trace", test_multifault_terminal_stops_trace);
      ("multifault: no trigger passes", test_multifault_no_trigger_passes);
      ("multifault validation", test_multifault_validation);
      ("multifault agrees with engine on single", test_multifault_agrees_with_engine_on_single);
      ("plugin multifault_of_point", test_plugin_multifault_of_point);
    ]
