(* Tests for the Domain-based worker pool: determinism across jobs
   settings, the scenario-keyed outcome cache, and oversubscription. *)

module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Point = Afex_faultspace.Point
module Outcome = Afex_injector.Outcome
module Rng = Afex_stats.Rng
module Apache = Afex_simtarget.Apache
module Coreutils = Afex_simtarget.Coreutils

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let executor () = Afex.Executor.of_target (Apache.target ())

(* A session's observable history, as comparable data. *)
let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      (Point.key c.Test_case.point, Outcome.status_to_string c.Test_case.status,
       c.Test_case.fitness))
    r.Session.executed

let run_jobs ?batch_size ?stop ~jobs ~iterations config =
  Pool.run ?batch_size ?stop ~jobs ~iterations config (Apache.space ())
    (Pool.Pure (executor ()))

(* --- determinism --- *)

let test_history_independent_of_jobs () =
  let run jobs =
    fst (run_jobs ~jobs ~iterations:300 (Config.fitness_guided ~seed:11 ()))
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  checki "same length 1 vs 4" (List.length (history r1)) (List.length (history r4));
  checkb "history 1 = history 2" true (history r1 = history r2);
  checkb "history 1 = history 4" true (history r1 = history r4);
  checki "same covered blocks" r1.Session.covered_blocks r4.Session.covered_blocks;
  checki "same failed" r1.Session.failed r4.Session.failed

let test_batch_one_matches_sequential_session () =
  (* With a window of one candidate, the pool's schedule degenerates to
     exactly Session.run's next/execute/report loop. *)
  let config = Config.fitness_guided ~seed:23 () in
  let sequential =
    Session.run ~iterations:200 config (Apache.space ()) (executor ())
  in
  let pooled, _ = run_jobs ~batch_size:1 ~jobs:1 ~iterations:200 config in
  checkb "identical history" true (history sequential = history pooled)

let test_random_search_deterministic () =
  let run jobs =
    fst (run_jobs ~jobs ~iterations:400 (Config.random_search ~seed:5 ()))
  in
  checkb "random search history jobs-independent" true
    (history (run 1) = history (run 3))

(* --- the memo cache --- *)

let test_cache_hits_on_small_space () =
  (* Random search over coreutils' space with more samples than points:
     repeats are guaranteed, and every repeat must be served by the cache. *)
  let sub = Coreutils.space () in
  let cardinality = Afex_faultspace.Subspace.cardinality sub in
  let iterations = (2 * cardinality) + 50 in
  let result, stats =
    Pool.run ~jobs:2 ~iterations
      (Config.random_search ~seed:7 ())
      sub
      (Pool.Pure (Afex.Executor.of_target (Coreutils.target ())))
  in
  checki "every candidate reported" iterations result.Session.iterations;
  checkb
    (Printf.sprintf "repeats hit the cache (executed %d <= %d)" stats.Pool.executed
       cardinality)
    true
    (stats.Pool.executed <= cardinality);
  checki "hits + executed = iterations" iterations
    (stats.Pool.executed + stats.Pool.cache_hits)

let test_cache_hit_count_jobs_independent () =
  let stats_for jobs =
    let _, s =
      Pool.run ~jobs ~iterations:500
        (Config.random_search ~seed:19 ())
        (Coreutils.space ())
        (Pool.Pure (Afex.Executor.of_target (Coreutils.target ())))
    in
    (s.Pool.executed, s.Pool.cache_hits)
  in
  checkb "cache accounting jobs-independent" true (stats_for 1 = stats_for 4)

let test_memoize_off_executes_everything () =
  let _, stats =
    Pool.run ~jobs:2 ~memoize:false ~iterations:300
      (Config.random_search ~seed:7 ())
      (Coreutils.space ())
      (Pool.Pure (Afex.Executor.of_target (Coreutils.target ())))
  in
  checki "no cache" 0 stats.Pool.cache_hits;
  checki "all executed" 300 stats.Pool.executed

(* --- oversubscription and edge cases --- *)

let test_more_jobs_than_candidates () =
  let config = Config.fitness_guided ~seed:3 () in
  let oversub, _ = run_jobs ~jobs:8 ~iterations:3 config in
  let single, _ = run_jobs ~jobs:1 ~iterations:3 config in
  checki "exactly three tests" 3 oversub.Session.iterations;
  checkb "same history as jobs=1" true (history single = history oversub)

let test_exhaustive_stops_at_cardinality () =
  let sub = Coreutils.space () in
  let cardinality = Afex_faultspace.Subspace.cardinality sub in
  let result, _ =
    Pool.run ~jobs:4 ~iterations:(cardinality + 100)
      (Config.exhaustive ~seed:1 ())
      sub
      (Pool.Pure (Afex.Executor.of_target (Coreutils.target ())))
  in
  checki "space exhausted exactly once" cardinality result.Session.iterations

let test_stop_target_respected () =
  let stop =
    { Session.matches = (fun c -> Test_case.failed c); count = 5 }
  in
  let run jobs = run_jobs ~stop ~jobs ~iterations:2000 (Config.fitness_guided ~seed:2 ()) in
  let r1, _ = run 1 and r4, _ = run 4 in
  checkb "stopped early" true r1.Session.stopped_early;
  checkb "stop iteration recorded" true (r1.Session.stop_iteration <> None);
  checkb "stop point jobs-independent" true
    (r1.Session.stop_iteration = r4.Session.stop_iteration);
  checkb "bounded overshoot: at most one batch beyond the target" true
    (r1.Session.iterations <= 2000)

let test_rejects_bad_arguments () =
  checkb "jobs >= 1" true
    (try ignore (Pool.create ~jobs:0 (Pool.Pure (executor ()))); false
     with Invalid_argument _ -> true);
  checkb "batch_size >= 1" true
    (try
       ignore (run_jobs ~batch_size:0 ~jobs:1 ~iterations:1 (Config.random_search ~seed:1 ()));
       false
     with Invalid_argument _ -> true)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 (Pool.Pure (executor ())) in
  let _, _ =
    Pool.session ~iterations:50 pool (Config.fitness_guided ~seed:9 ()) (Apache.space ())
  in
  Pool.shutdown pool;
  Pool.shutdown pool;
  checki "jobs recorded" 3 (Pool.jobs pool)

(* --- seeded (stochastic) executors --- *)

let seeded_executor () =
  let target = Apache.target () in
  Pool.Seeded
    {
      total_blocks = Afex_simtarget.Target.total_blocks target;
      description = "apache (nondet)";
      run =
        (fun rng scenario ->
          let e =
            Afex.Executor.of_target ~nondet:{ Afex_injector.Engine.rng; dodge_probability = 0.3 }
              target
          in
          e.Afex.Executor.run_scenario scenario);
    }

let test_seeded_replayable_across_jobs () =
  let run jobs =
    fst
      (Pool.run ~jobs ~iterations:300
         (Config.fitness_guided ~seed:31 ())
         (Apache.space ()) (seeded_executor ()))
  in
  let a = run 1 and b = run 4 in
  checkb "per-task RNG streams make nondet runs replayable" true
    (history a = history b)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("history independent of jobs", test_history_independent_of_jobs);
      ("batch=1 matches Session.run", test_batch_one_matches_sequential_session);
      ("random search deterministic", test_random_search_deterministic);
      ("cache hits on small space", test_cache_hits_on_small_space);
      ("cache accounting jobs-independent", test_cache_hit_count_jobs_independent);
      ("memoize off executes everything", test_memoize_off_executes_everything);
      ("more jobs than candidates", test_more_jobs_than_candidates);
      ("exhaustive stops at cardinality", test_exhaustive_stops_at_cardinality);
      ("stop target respected", test_stop_target_respected);
      ("rejects bad arguments", test_rejects_bad_arguments);
      ("shutdown idempotent", test_shutdown_idempotent);
      ("seeded executor replayable", test_seeded_replayable_across_jobs);
    ]
