(* Property-test sweep over the fast redundancy engine, on the Prop
   harness: the bounded edit-distance kernels (Myers bit-parallel and the
   banded DP) agree with the reference two-row DP under and over the
   budget, the bag filter is a genuine lower bound, the incremental
   cluster index reproduces the batch union-find partition on random
   corpora, and the rewritten feedback store weighs fitness bit-for-bit
   like the seed implementation. *)

module Lev = Afex_quality.Levenshtein
module Clustering = Afex_quality.Clustering
module Trace_intern = Afex_quality.Trace_intern
module Index = Afex_quality.Index
module Feedback = Afex_quality.Feedback

let checkb = Alcotest.(check bool)

let show_tokens l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

(* Token lists over a small alphabet: collisions are frequent enough that
   distances actually vary. [long] pushes past the 62-token Myers window
   so the banded kernel is exercised too. *)
let arb_tokens ?(max_length = 12) () =
  Prop.list ~max_length (Prop.int_range 0 5)

let arb_long_tokens =
  let base = arb_tokens ~max_length:20 () in
  Prop.make
    ~shrink:(fun l -> if List.length l > 64 then [] else base.Prop.shrink l)
    ~show:show_tokens
    (fun rng ->
      (* length 60..90 straddles the Myers/banded boundary *)
      let n = 60 + Afex_stats.Rng.int rng 31 in
      List.init n (fun _ -> Afex_stats.Rng.int rng 6))

(* --- distance_at_most agrees with the reference DP ------------------- *)

let bounded_agrees (a, b, k) =
  let a = Array.of_list a and b = Array.of_list b in
  let d = Lev.distance_ints a b in
  match Lev.distance_at_most ~k a b with
  | Some d' -> d' = d && d <= k
  | None -> d > k

let test_bounded_distance_agrees () =
  let arb =
    Prop.(
      map
        ~show:(fun (a, b, k) ->
          Printf.sprintf "a=%s b=%s k=%d" (show_tokens a) (show_tokens b) k)
        (fun ((a, b), k) -> (a, b, k))
        (pair (pair (arb_tokens ()) (arb_tokens ())) (int_range 0 14)))
  in
  Prop.check ~count:500 "distance_at_most agrees with reference DP" arb
    bounded_agrees

let test_bounded_distance_agrees_long () =
  let arb =
    Prop.(
      map
        ~show:(fun (a, b, k) ->
          Printf.sprintf "a=%s b=%s k=%d" (show_tokens a) (show_tokens b) k)
        (fun ((a, b), k) -> (a, b, k))
        (pair (pair arb_long_tokens arb_long_tokens) (int_range 0 40)))
  in
  Prop.check ~count:120 "banded distance_at_most agrees on long traces" arb
    bounded_agrees

(* --- the bag filter is a lower bound --------------------------------- *)

let test_bag_lower_bound () =
  let arb = Prop.pair (arb_tokens ()) (arb_tokens ()) in
  Prop.check ~count:500 "bag filter bounds the distance from below" arb
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      let lb = Lev.bag_lower_bound sa sb in
      lb <= Lev.distance_ints a b && lb >= abs (Array.length a - Array.length b))

(* --- incremental index = batch union-find clustering ----------------- *)

let frame_alphabet = [ "a"; "b"; "c"; "d" ]

let arb_corpus =
  Prop.list ~max_length:18
    (Prop.list ~max_length:6 (Prop.choose frame_alphabet))

let show_corpus corpus =
  "["
  ^ String.concat "; "
      (List.map (fun tr -> "[" ^ String.concat "," tr ^ "]") corpus)
  ^ "]"

(* Canonical view of a partition over items 0..n-1: for each item, the
   first item of its cluster. Identifies the partition regardless of the
   order clusters are listed in. *)
let batch_assignment ~threshold corpus =
  let items = List.mapi (fun i tr -> (i, tr)) corpus in
  let clusters = Clustering.cluster ~threshold ~trace:snd items in
  let assign = Array.make (List.length corpus) (-1) in
  List.iter
    (fun c ->
      let rep = fst c.Clustering.representative in
      List.iter (fun (i, _) -> assign.(i) <- rep) c.Clustering.members)
    clusters;
  assign

let index_assignment ~threshold corpus =
  let intern = Trace_intern.create () in
  let index = Index.create ~threshold ~intern () in
  List.iter (Index.observe index) corpus;
  let assign = Array.make (List.length corpus) (-1) in
  List.iter
    (fun members ->
      let rep = List.hd members in
      List.iter (fun i -> assign.(i) <- rep) members)
    (Index.clusters index);
  assign

let test_index_matches_batch () =
  List.iter
    (fun threshold ->
      let arb =
        Prop.make ~shrink:arb_corpus.Prop.shrink ~show:show_corpus
          arb_corpus.Prop.gen
      in
      Prop.check ~count:200
        (Printf.sprintf "index = batch clustering at threshold %.2f" threshold)
        arb
        (fun corpus ->
          batch_assignment ~threshold corpus
          = index_assignment ~threshold corpus))
    [ 0.1; 0.34; 0.6 ]

let test_index_counts () =
  Prop.check ~count:200 "index counts match the batch metrics" arb_corpus
    (fun corpus ->
      let intern = Trace_intern.create () in
      let index = Index.create ~intern () in
      List.iter (Index.observe index) corpus;
      Index.length index = List.length corpus
      && Index.distinct index = Clustering.distinct_traces corpus
      && Index.cluster_count index
         = Clustering.cluster_count ~trace:(fun t -> t) corpus
      && Index.cluster_count index = List.length (Index.clusters index))

(* --- feedback weights are unchanged vs the seed implementation ------- *)

(* The seed Feedback, verbatim modulo renaming: a string-keyed exact
   table plus a linear fold of full-DP similarities. *)
module Seed_feedback = struct
  type t = {
    exact : (string, unit) Hashtbl.t;
    mutable traces : string array list;
  }

  let create () = { exact = Hashtbl.create 64; traces = [] }
  let key trace = String.concat "\x00" trace

  let weight t trace =
    if Hashtbl.mem t.exact (key trace) then 0.0
    else begin
      let candidate = Array.of_list trace in
      let best =
        List.fold_left
          (fun acc known -> Float.max acc (Lev.similarity candidate known))
          0.0 t.traces
      in
      1.0 -. best
    end

  let register t trace =
    let k = key trace in
    if not (Hashtbl.mem t.exact k) then begin
      Hashtbl.add t.exact k ();
      t.traces <- Array.of_list trace :: t.traces
    end

  let weigh_fitness t ~trace fitness =
    match trace with
    | None -> fitness
    | Some trace ->
        let w = weight t trace in
        register t trace;
        fitness *. w
end

let test_feedback_matches_seed () =
  let arb_outcomes =
    Prop.list ~max_length:25
      (Prop.pair
         (Prop.list ~max_length:8 (Prop.choose frame_alphabet))
         (Prop.float_range 0.0 10.0))
  in
  Prop.check ~count:200 "feedback weights bit-identical to seed" arb_outcomes
    (fun outcomes ->
      let fast = Feedback.create () and seed = Seed_feedback.create () in
      List.for_all
        (fun (trace, fitness) ->
          let wf = Feedback.weigh_fitness fast ~trace:(Some trace) fitness in
          let ws = Seed_feedback.weigh_fitness seed ~trace:(Some trace) fitness in
          Int64.equal (Int64.bits_of_float wf) (Int64.bits_of_float ws))
        outcomes)

let test_feedback_weight_matches_seed () =
  (* [weight] alone (no registration), probed against a random store. *)
  let arb =
    Prop.pair
      (Prop.list ~max_length:12 (Prop.list ~max_length:8 (Prop.choose frame_alphabet)))
      (Prop.list ~max_length:8 (Prop.choose frame_alphabet))
  in
  Prop.check ~count:300 "weight query bit-identical to seed" arb
    (fun (store, probe) ->
      let fast = Feedback.create () and seed = Seed_feedback.create () in
      List.iter
        (fun tr ->
          Feedback.register fast tr;
          Seed_feedback.register seed tr)
        store;
      Int64.equal
        (Int64.bits_of_float (Feedback.weight fast probe))
        (Int64.bits_of_float (Seed_feedback.weight seed probe)))

let test_intern_round_trip () =
  Prop.check ~count:300 "interning round-trips traces"
    (Prop.list ~max_length:10 (Prop.choose frame_alphabet))
    (fun trace ->
      let intern = Trace_intern.create () in
      let tokens = Trace_intern.intern intern trace in
      Trace_intern.extern intern tokens = trace)

let test_myers_boundary () =
  (* Pin the exact Myers word-size boundary: 62-token traces still take
     the bit-parallel path, 63 falls back to the band. *)
  let mk n offset = Array.init n (fun i -> i + offset) in
  List.iter
    (fun n ->
      let a = mk n 0 and b = mk n 1 in
      let d = Lev.distance_ints a b in
      checkb
        (Printf.sprintf "length %d agrees" n)
        true
        (Lev.distance_at_most ~k:n a b = Some d))
    [ 61; 62; 63; 64 ]

let suite =
  [
    Alcotest.test_case "bounded distance agrees" `Quick
      test_bounded_distance_agrees;
    Alcotest.test_case "bounded distance agrees (long)" `Slow
      test_bounded_distance_agrees_long;
    Alcotest.test_case "bag lower bound" `Quick test_bag_lower_bound;
    Alcotest.test_case "index matches batch clustering" `Quick
      test_index_matches_batch;
    Alcotest.test_case "index counts" `Quick test_index_counts;
    Alcotest.test_case "feedback matches seed" `Quick
      test_feedback_matches_seed;
    Alcotest.test_case "weight query matches seed" `Quick
      test_feedback_weight_matches_seed;
    Alcotest.test_case "intern round trip" `Quick test_intern_round_trip;
    Alcotest.test_case "myers boundary" `Quick test_myers_boundary;
  ]
