(* Tests for the adaptive in-flight window controller: the AIMD
   hill-climb's decision table, trace (de)serialization and replay,
   telemetry EWMAs, the per-connection credit plumbing, and the
   end-to-end record/replay determinism guarantee through the pool. *)

module Scheduler = Afex_cluster.Scheduler
module Trace = Afex_cluster.Scheduler.Trace
module Pool = Afex_cluster.Pool
module RM = Afex_cluster.Remote_manager
module AE = Afex_cluster.Async_executor
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Point = Afex_faultspace.Point
module Outcome = Afex_injector.Outcome
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* Feed one synthetic batch whose throughput is exactly [tp]
   candidates/second: 100 ms of pure execution, merged = tp / 10. *)
let feed s tp =
  let merged = int_of_float (tp /. 10.0) in
  Scheduler.observe s ~gen_ms:0.0 ~exec_ms:100.0 ~merge_ms:0.0 ~executed:merged
    ~merged

let last_decision s =
  match List.rev (Scheduler.trace s) with
  | [] -> Alcotest.fail "empty trace"
  | e :: _ -> e.Trace.decision

let decision =
  Alcotest.testable
    (fun ppf d -> Format.pp_print_string ppf (Trace.decision_to_string d))
    (fun a b -> a = b)

(* --- controller decision table -------------------------------------- *)

let test_first_observe_doubles () =
  let s = Scheduler.create ~initial:8 Scheduler.Adaptive in
  checki "initial window" 8 (Scheduler.window s);
  feed s 100.0;
  checki "first observe doubles" 16 (Scheduler.window s);
  Alcotest.check decision "recorded as grow" Trace.Grow (last_decision s);
  checki "one batch recorded" 1 (Scheduler.batches s)

let test_slow_start_doubles_while_improving () =
  let s = Scheduler.create ~initial:4 ~window_max:512 Scheduler.Adaptive in
  feed s 100.0;
  feed s 150.0;
  feed s 250.0;
  feed s 400.0;
  (* 4 -> 8 (first observe) -> 16 -> 32 -> 64: multiplicative while every
     batch beats the last by more than the dead-band. *)
  checki "three doublings after the first" 64 (Scheduler.window s);
  checkb "all decisions are grow" true
    (List.for_all (fun e -> e.Trace.decision = Trace.Grow) (Scheduler.trace s))

let test_regression_needs_confirmation () =
  let s = Scheduler.create ~initial:8 Scheduler.Adaptive in
  feed s 100.0;
  (* window 16, dir Up, reference 100/s *)
  feed s 50.0;
  checki "first regression holds the window" 16 (Scheduler.window s);
  Alcotest.check decision "suspect batch is a hold" Trace.Hold
    (last_decision s);
  feed s 50.0;
  (* confirmed against the same pre-drop reference: multiplicative cut *)
  checki "confirmed regression shrinks" 8 (Scheduler.window s);
  Alcotest.check decision "recorded as shrink" Trace.Shrink (last_decision s)

let test_noisy_batch_costs_nothing () =
  (* One bad measurement sandwiched between good ones: the suspect flag
     absorbs it and the reference survives, so the recovery batch reads
     as a tie against the pre-drop throughput, never as an improvement
     that would restart the ramp from a shrunken window. *)
  let s = Scheduler.create ~initial:8 Scheduler.Adaptive in
  feed s 100.0;
  feed s 30.0;
  checki "dip held" 16 (Scheduler.window s);
  feed s 101.0;
  checkb "window never shrank" true (Scheduler.window s >= 16)

let test_mistaken_shrink_reverts_multiplicatively () =
  let s = Scheduler.create ~initial:8 Scheduler.Adaptive in
  feed s 100.0;
  (* window 16 *)
  feed s 50.0;
  feed s 50.0;
  (* confirmed: window 8, dir Down, reference 50/s *)
  checki "shrunk" 8 (Scheduler.window s);
  feed s 30.0;
  (* worse after a shrink: the shrink was the mistake — turn back
     multiplicatively (8 / 0.5) and re-arm slow start. *)
  checki "revert doubles back" 16 (Scheduler.window s);
  Alcotest.check decision "revert recorded as grow" Trace.Grow
    (last_decision s);
  feed s 60.0;
  checki "slow start re-armed: next improvement doubles" 32 (Scheduler.window s)

let test_down_and_better_refines_additively () =
  let s = Scheduler.create ~initial:64 ~step:8 Scheduler.Adaptive in
  feed s 100.0;
  (* window 128 *)
  feed s 40.0;
  feed s 40.0;
  (* confirmed regression: 128 -> 64, dir Down *)
  checki "cut in half" 64 (Scheduler.window s);
  feed s 80.0;
  (* shrinking helped: keep refining downward by one additive step *)
  checki "gentle downward refinement" 56 (Scheduler.window s);
  Alcotest.check decision "refinement recorded as shrink" Trace.Shrink
    (last_decision s)

let test_window_respects_bounds () =
  let s =
    Scheduler.create ~window_min:2 ~window_max:24 ~initial:16 Scheduler.Adaptive
  in
  let tp = ref 100.0 in
  for _ = 1 to 12 do
    tp := !tp *. 2.0;
    feed s !tp
  done;
  checki "growth clamps at window_max" 24 (Scheduler.window s);
  for _ = 1 to 30 do
    tp := !tp /. 2.0;
    feed s (Float.max 10.0 !tp)
  done;
  checkb "shrink clamps at window_min" true (Scheduler.window s >= 2);
  checkb "every recorded window within bounds" true
    (List.for_all
       (fun e -> e.Trace.window >= 2 && e.Trace.window <= 24)
       (Scheduler.trace s))

let test_tie_break_is_seeded () =
  let run seed =
    let s = Scheduler.create ~initial:16 ~seed Scheduler.Adaptive in
    (* after the first observe, every batch measures exactly the
       reference: all ties, decided by the seeded coin alone *)
    for _ = 1 to 12 do
      feed s 100.0
    done;
    Trace.windows (Scheduler.trace s)
  in
  checkb "same seed, same window sequence" true (run 5 = run 5);
  checkb "tie batches mix grow and hold" true
    (let s = Scheduler.create ~initial:16 ~seed:5 Scheduler.Adaptive in
     for _ = 1 to 24 do
       feed s 100.0
     done;
     let ds = List.map (fun e -> e.Trace.decision) (Scheduler.trace s) in
     List.mem Trace.Grow ds && List.mem Trace.Hold ds)

let test_static_mode_only_records () =
  let s = Scheduler.create ~initial:10 Scheduler.Static in
  feed s 100.0;
  feed s 500.0;
  feed s 10.0;
  checki "window never moves" 10 (Scheduler.window s);
  checkb "all decisions are hold" true
    (List.for_all (fun e -> e.Trace.decision = Trace.Hold) (Scheduler.trace s));
  checkb "telemetry still recorded" true (Scheduler.telemetry s <> None)

let test_replay_applies_recorded_sequence () =
  let s = Scheduler.create ~window_max:64 (Scheduler.Replay [| 4; 9; 2 |]) in
  checki "starts on the first recorded window" 4 (Scheduler.window s);
  feed s 100.0;
  checki "second batch window" 9 (Scheduler.window s);
  feed s 1.0;
  checki "third batch window (measurements ignored)" 2 (Scheduler.window s);
  feed s 1000.0;
  checki "past the end the last window is reused" 2 (Scheduler.window s);
  checkb "all decisions are replay" true
    (List.for_all
       (fun e -> e.Trace.decision = Trace.Replayed)
       (Scheduler.trace s))

let test_create_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "window_min 0" (fun () ->
      Scheduler.create ~window_min:0 Scheduler.Adaptive);
  expect_invalid "inverted bounds" (fun () ->
      Scheduler.create ~window_min:8 ~window_max:4 Scheduler.Adaptive);
  expect_invalid "step 0" (fun () ->
      Scheduler.create ~step:0 Scheduler.Adaptive);
  expect_invalid "decrease 0" (fun () ->
      Scheduler.create ~decrease:0.0 Scheduler.Adaptive);
  expect_invalid "decrease 1" (fun () ->
      Scheduler.create ~decrease:1.0 Scheduler.Adaptive);
  expect_invalid "negative epsilon" (fun () ->
      Scheduler.create ~epsilon:(-0.1) Scheduler.Adaptive);
  expect_invalid "alpha 0" (fun () ->
      Scheduler.create ~alpha:0.0 Scheduler.Adaptive);
  expect_invalid "alpha 1.5" (fun () ->
      Scheduler.create ~alpha:1.5 Scheduler.Adaptive);
  expect_invalid "empty replay" (fun () ->
      Scheduler.create (Scheduler.Replay [||]));
  checki "initial clamped into bounds" 16
    (Scheduler.window
       (Scheduler.create ~window_min:2 ~window_max:16 ~initial:400
          Scheduler.Adaptive))

(* --- telemetry ------------------------------------------------------ *)

let test_telemetry_ewma () =
  let s = Scheduler.create ~alpha:0.3 ~initial:8 Scheduler.Static in
  checkb "no telemetry before the first batch" true
    (Scheduler.telemetry s = None);
  Scheduler.observe s ~gen_ms:10.0 ~exec_ms:80.0 ~merge_ms:10.0 ~executed:10
    ~merged:10;
  (let tel = Option.get (Scheduler.telemetry s) in
   checkf "first batch seeds the EWMA" 100.0 tel.Scheduler.throughput;
   checkf "utilization = exec / wall" 0.8 tel.Scheduler.utilization;
   checkf "queue wait = gen / 2" 5.0 tel.Scheduler.queue_wait_ms;
   checkf "merge stall = merge" 10.0 tel.Scheduler.merge_stall_ms;
   checkf "freshness of a 10-wide batch" (1.0 /. 5.5) tel.Scheduler.freshness);
  Scheduler.observe s ~gen_ms:0.0 ~exec_ms:100.0 ~merge_ms:0.0 ~executed:20
    ~merged:20;
  let tel = Option.get (Scheduler.telemetry s) in
  checkf "EWMA throughput 0.3*200 + 0.7*100" 130.0 tel.Scheduler.throughput;
  checkf "EWMA utilization 0.3*1.0 + 0.7*0.8" 0.86 tel.Scheduler.utilization;
  checkf "EWMA queue wait decays" 3.5 tel.Scheduler.queue_wait_ms

let test_degenerate_timings () =
  (* A zero-wall batch (all cache hits) must not divide by zero, and
     negative clock skew is clamped away. *)
  let s = Scheduler.create ~initial:4 Scheduler.Adaptive in
  Scheduler.observe s ~gen_ms:0.0 ~exec_ms:0.0 ~merge_ms:0.0 ~executed:0
    ~merged:4;
  Scheduler.observe s ~gen_ms:(-5.0) ~exec_ms:(-1.0) ~merge_ms:(-2.0)
    ~executed:0 ~merged:0;
  let tel = Option.get (Scheduler.telemetry s) in
  checkf "zero-wall throughput is zero" 0.0 tel.Scheduler.throughput;
  checkb "windows stay within bounds" true
    (Scheduler.window s >= 1 && Scheduler.window s <= 128)

(* --- trace serialization -------------------------------------------- *)

let make_trace () =
  let s = Scheduler.create ~initial:8 ~seed:3 Scheduler.Adaptive in
  feed s 100.0;
  feed s 180.0;
  feed s 90.0;
  feed s 85.0;
  feed s 120.0;
  Scheduler.trace s

let test_trace_round_trip () =
  let t = make_trace () in
  checki "five entries" 5 (List.length t);
  (* %.6f serialization is lossy on the first pass, so the invariant is
     stability: one round of parsing fixes the floats for good. *)
  (match Trace.of_string (Trace.to_string t) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok t' ->
      checkb "windows survive the round trip" true
        (Trace.windows t = Trace.windows t');
      checkb "serialization is stable after one round" true
        (Trace.to_string t = Trace.to_string t'));
  checkb "windows extracts the per-batch sequence" true
    (Trace.windows t = Array.of_list (List.map (fun e -> e.Trace.window) t))

let test_trace_rejects_garbage () =
  let reject name s =
    match Trace.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected rejection" name
    | Error _ -> ()
  in
  reject "bad header" "afex-trace 99\n1 2 3 hold 0 0 0 0 0 0 0 0 0 0\n";
  reject "not a trace" "hello world\n";
  reject "truncated entry" "afex-trace 1\n1 2 3 hold 0.0\n";
  reject "unknown decision" "afex-trace 1\n0 8 8 explode 0 0 0 0 0 0 0 0 0 0\n";
  reject "non-positive window" "afex-trace 1\n0 0 8 hold 0 0 0 0 0 0 0 0 0 0\n";
  match Trace.of_string "afex-trace 1\n\n\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "blank lines should parse as an empty trace"
  | Error e -> Alcotest.failf "blank lines rejected: %s" e

let test_trace_save_load () =
  let t = make_trace () in
  let path = Filename.temp_file "afex_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path t;
      match Trace.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok t' ->
          checkb "save/load round-trips" true
            (Trace.to_string t = Trace.to_string t'));
  match Trace.load "/nonexistent/afex_trace.txt" with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ()

let test_trace_json_shape () =
  let json = Trace.to_json (make_trace ()) in
  let n = String.length json in
  checkb "json is an array of objects" true
    (n > 2 && json.[0] = '[' && json.[n - 1] = ']');
  let count_substring needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub hay i n = needle then go (i + n) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  checki "one decision field per entry" 5 (count_substring "\"decision\"" json)

(* --- credit plumbing ------------------------------------------------ *)

let test_pipelined_credit () =
  let exec = Afex.Executor.of_target (Apache.target ()) in
  let lb = RM.Loopback.create ~executor:exec () in
  let conn =
    RM.Pipelined.create (RM.Loopback.spec lb)
      ~total_blocks:exec.Afex.Executor.total_blocks
  in
  checkb "unlimited credit by default" true (RM.Pipelined.has_credit conn);
  (match RM.Pipelined.set_credit conn 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_credit 0 should be rejected");
  RM.Pipelined.set_credit conn 1;
  checki "credit readable back" 1 (RM.Pipelined.credit conn);
  let scenario =
    Afex_injector.Fault.to_scenario
      (Afex_injector.Fault.make ~test_id:0 ~func:"read" ~call_number:1 ())
  in
  (match RM.Pipelined.submit conn ~tag:0 scenario with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit: %s" (RM.string_of_error e));
  checkb "one outstanding exhausts a credit of one" false
    (RM.Pipelined.has_credit conn);
  RM.Pipelined.set_credit conn 2;
  checkb "raising the credit frees a slot" true (RM.Pipelined.has_credit conn);
  RM.Pipelined.close conn;
  RM.Loopback.shutdown lb

let test_set_inflight_validation () =
  let exec = Afex.Executor.of_target (Apache.target ()) in
  let ae =
    AE.create ~inflight:4 ~total_blocks:exec.Afex.Executor.total_blocks ()
  in
  checki "initial inflight" 4 (AE.inflight ae);
  AE.set_inflight ae 9;
  checki "retuned inflight" 9 (AE.inflight ae);
  match AE.set_inflight ae 0 with
  | exception Invalid_argument _ ->
      checki "rejected retune leaves window" 9 (AE.inflight ae)
  | () -> Alcotest.fail "set_inflight 0 should be rejected"

(* --- record/replay through the pool --------------------------------- *)

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      (Point.key c.Test_case.point, Outcome.status_to_string c.Test_case.status,
       c.Test_case.fitness))
    r.Session.executed

let test_adaptive_pool_replays_bit_identically () =
  let config = Config.fitness_guided ~seed:41 () in
  let space = Apache.space () in
  let executor () = Pool.Pure (Afex.Executor.of_target (Apache.target ())) in
  let adaptive =
    Scheduler.create ~window_min:1 ~window_max:32 ~initial:8 ~seed:41
      Scheduler.Adaptive
  in
  let recorded, _ =
    Pool.run ~scheduler:adaptive ~jobs:2 ~iterations:240 config space
      (executor ())
  in
  let trace = Scheduler.trace adaptive in
  checkb "adaptive run recorded a trace" true (List.length trace > 0);
  let replayer =
    Scheduler.create ~window_min:1 ~window_max:32
      (Scheduler.Replay (Trace.windows trace))
  in
  let replayed, _ =
    Pool.run ~scheduler:replayer ~jobs:1 ~iterations:240 config space
      (executor ())
  in
  checkb "replayed history is bit-identical" true
    (history recorded = history replayed);
  checki "same batch count" (Scheduler.batches adaptive)
    (Scheduler.batches replayer);
  (* The windows the replay actually used are the recorded ones. *)
  checkb "replay used the recorded windows" true
    (Trace.windows trace = Trace.windows (Scheduler.trace replayer))

let test_static_scheduler_matches_plain_batch_size () =
  (* A Static scheduler at window w must explore exactly the same history
     as a plain batch_size w run: the scheduler only watches. *)
  let config = Config.fitness_guided ~seed:19 () in
  let space = Apache.space () in
  let executor () = Pool.Pure (Afex.Executor.of_target (Apache.target ())) in
  let plain, _ =
    Pool.run ~batch_size:16 ~jobs:1 ~iterations:150 config space (executor ())
  in
  let sched = Scheduler.create ~initial:16 Scheduler.Static in
  let watched, _ =
    Pool.run ~scheduler:sched ~jobs:1 ~iterations:150 config space (executor ())
  in
  checkb "same history" true (history plain = history watched);
  checkb "telemetry was collected" true (Scheduler.telemetry sched <> None)

let suite =
  [
    Alcotest.test_case "first observe doubles" `Quick
      test_first_observe_doubles;
    Alcotest.test_case "slow start doubles while improving" `Quick
      test_slow_start_doubles_while_improving;
    Alcotest.test_case "regression needs confirmation" `Quick
      test_regression_needs_confirmation;
    Alcotest.test_case "noisy batch costs nothing" `Quick
      test_noisy_batch_costs_nothing;
    Alcotest.test_case "mistaken shrink reverts multiplicatively" `Quick
      test_mistaken_shrink_reverts_multiplicatively;
    Alcotest.test_case "down and better refines additively" `Quick
      test_down_and_better_refines_additively;
    Alcotest.test_case "window respects bounds" `Quick
      test_window_respects_bounds;
    Alcotest.test_case "tie break is seeded" `Quick test_tie_break_is_seeded;
    Alcotest.test_case "static mode only records" `Quick
      test_static_mode_only_records;
    Alcotest.test_case "replay applies recorded sequence" `Quick
      test_replay_applies_recorded_sequence;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "telemetry EWMA" `Quick test_telemetry_ewma;
    Alcotest.test_case "degenerate timings" `Quick test_degenerate_timings;
    Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
    Alcotest.test_case "trace rejects garbage" `Quick
      test_trace_rejects_garbage;
    Alcotest.test_case "trace save/load" `Quick test_trace_save_load;
    Alcotest.test_case "trace json shape" `Quick test_trace_json_shape;
    Alcotest.test_case "pipelined credit" `Quick test_pipelined_credit;
    Alcotest.test_case "set_inflight validation" `Quick
      test_set_inflight_validation;
    Alcotest.test_case "adaptive pool replays bit-identically" `Quick
      test_adaptive_pool_replays_bit_identically;
    Alcotest.test_case "static scheduler matches plain batch size" `Quick
      test_static_scheduler_matches_plain_batch_size;
  ]
