let () =
  Alcotest.run "afex"
    [
      ("stats", Test_stats.suite);
      ("faultspace", Test_faultspace.suite);
      ("fsdl", Test_fsdl.suite);
      ("simtarget", Test_simtarget.suite);
      ("injector", Test_injector.suite);
      ("quality", Test_quality.suite);
      ("prop_quality", Test_prop_quality.suite);
      ("core", Test_core.suite);
      ("prop_core", Test_prop_core.suite);
      ("rarity", Test_rarity.suite);
      ("cluster", Test_cluster.suite);
      ("transport", Test_transport.suite);
      ("async", Test_async.suite);
      ("sched", Test_sched.suite);
      ("runtime", Test_runtime.suite);
      ("pool", Test_pool.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("replsim", Test_replsim.suite);
      ("misc", Test_misc.suite);
      ("integration", Test_integration.suite);
    ]
