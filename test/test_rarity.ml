(* The rarity layer: histogram properties on the Prop harness (the
   bonus is monotone non-increasing in hit counts, dump/load round-trips
   bit-for-bit on random states), FairFuzz mutation masking (a pinned
   axis is never mutated — swept exhaustively over every mask of a fixed
   subspace and property-checked over random ones), the masked-reject
   attribution that keeps masking from silently degrading the session to
   random search, and end-to-end determinism of rarity+mask campaigns
   across pool shapes and a mid-campaign checkpoint/resume crash. *)

module Rng = Afex_stats.Rng
module Bitset = Afex_stats.Bitset
module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point
module Subspace = Afex_faultspace.Subspace
module Config = Afex.Config
module Session = Afex.Session
module Rarity = Afex.Rarity
module Mutator = Afex.Mutator
module Sensitivity = Afex.Sensitivity
module History = Afex.History
module Pqueue = Afex.Pqueue
module Test_case = Afex.Test_case
module Outcome = Afex_injector.Outcome
module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault
module Pool = Afex_cluster.Pool
module Checkpoint = Afex_cluster.Checkpoint
module Export = Afex_report.Export

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- histogram properties ---------------------------------------------- *)

let bitset blocks ids =
  let b = Bitset.create blocks in
  List.iter (fun i -> Bitset.set b (i mod blocks)) ids;
  b

(* A random histogram state: a block count and a sequence of coverage
   sets (block ids folded into range). *)
let arb_observations =
  Prop.(
    pair (int_range 1 24)
      (list ~max_length:12 (list ~max_length:8 (int_range 0 23))))

let test_prop_bonus_monotone () =
  Prop.check ~count:200 "bonus monotone non-increasing in hit counts"
    (Prop.pair arb_observations
       (Prop.list ~max_length:6 (Prop.int_range 0 23)))
    (fun ((blocks, obs), probe) ->
      let probe = if probe = [] then [ 0 ] else probe in
      let hist = Rarity.create ~blocks in
      let probe_bs = bitset blocks probe in
      (* Nothing observed yet: the probe's rarest block is unhit, so the
         bonus starts at its maximum of 1. Every further observation can
         only raise hit counts, so the probe's bonus may never rise. *)
      let prev = ref (Rarity.bonus hist probe_bs) in
      !prev = 1.0
      && List.for_all
           (fun ids ->
             Rarity.observe hist (bitset blocks ids);
             let b = Rarity.bonus hist probe_bs in
             let ok = b <= !prev && 0.0 < b && b <= 1.0 in
             prev := b;
             ok)
           obs)

let test_prop_dump_load_roundtrip () =
  Prop.check ~count:200 "dump/load round-trips bit-for-bit"
    arb_observations (fun (blocks, obs) ->
      let hist = Rarity.create ~blocks in
      List.iter (fun ids -> Rarity.observe hist (bitset blocks ids)) obs;
      let d = Rarity.dump hist in
      match Rarity.load ~blocks d with
      | Error _ -> false
      | Ok hist' ->
          Rarity.dump hist' = d
          && Rarity.tests hist' = Rarity.tests hist
          && List.for_all
               (fun b -> Rarity.hit_count hist' b = Rarity.hit_count hist b)
               (List.init blocks (fun i -> i)))

let test_load_rejects_malformed () =
  let bad d =
    match Rarity.load ~blocks:4 d with Error _ -> true | Ok _ -> false
  in
  checkb "block out of range" true (bad (1, [ (4, 1) ]));
  checkb "blocks out of order" true (bad (2, [ (2, 1); (1, 1) ]));
  checkb "duplicate block rejected" true (bad (2, [ (1, 1); (1, 2) ]));
  checkb "non-positive count" true (bad (1, [ (0, 0) ]));
  checkb "count exceeds tests" true (bad (1, [ (0, 2) ]));
  checkb "negative test total" true (bad (-1, []));
  checkb "well-formed accepted" false (bad (3, [ (0, 1); (2, 3) ]))

let test_empty_coverage_earns_nothing () =
  let hist = Rarity.create ~blocks:8 in
  checkb "no bonus on empty coverage" true
    (Rarity.bonus hist (Bitset.create 8) = 0.0);
  checkb "no rarest block" true
    (Rarity.rarest_block hist (Bitset.create 8) = None)

(* --- mutation masking --------------------------------------------------- *)

let case ?(fitness = 1.0) point =
  {
    Test_case.point;
    fault = Afex_injector.Fault.make ~test_id:0 ~func:"read" ~call_number:1 ();
    status = Outcome.Passed;
    triggered = true;
    impact = fitness;
    fitness;
    birth = 0;
    mutated_axis = None;
    injection_stack = None;
    crash_stack = None;
    new_blocks = 0;
    duration_ms = 0.1;
  }

let subspace_of_cards cards =
  Subspace.make
    (List.mapi
       (fun i card -> Axis.range (Printf.sprintf "a%d" i) ~lo:0 ~hi:(card - 1))
       cards)

let pinned_untouched sub mask parent offspring axis =
  (not mask.(axis))
  && Subspace.mem sub offspring
  && List.for_all
       (fun i ->
         (not mask.(i))
         || Point.get offspring i = Point.get parent.Test_case.point i)
       (List.init (Subspace.dim sub) (fun i -> i))

(* Random (cardinality, pinned) axis lists with a seed for the draws; a
   mask that pins everything is repaired by freeing its first axis. *)
let arb_mask_setup =
  Prop.(
    pair
      (list ~max_length:5 (pair (int_range 1 9) bool))
      (int_range 0 9_999))

let test_prop_mask_never_mutates_pinned () =
  Prop.check ~count:200 "masked mutation never touches a pinned axis"
    arb_mask_setup (fun (axes, seed) ->
      let axes = if axes = [] then [ (3, true); (4, false) ] else axes in
      let axes =
        if List.exists (fun (_, pinned) -> not pinned) axes then axes
        else
          let card, _ = List.hd axes in
          (card, false) :: List.tl axes
      in
      let cards = List.map fst axes in
      let mask = Array.of_list (List.map snd axes) in
      let sub = subspace_of_cards cards in
      let rng = Rng.create seed in
      let sens = Sensitivity.create ~dims:(Subspace.dim sub) () in
      let parent = case (Subspace.random_point rng sub) in
      let ok = ref true in
      for _ = 1 to 20 do
        let offspring, axis =
          Mutator.mutate ~mask Mutator.default_params rng sub sens ~parent
        in
        ok := !ok && pinned_untouched sub mask parent offspring axis
      done;
      !ok)

let test_exhaustive_masks_on_fixed_subspace () =
  (* Every valid mask over a 4-axis subspace — all 2^4 - 1 that leave a
     free axis — with repeated draws under each. *)
  let sub = subspace_of_cards [ 2; 3; 4; 5 ] in
  let dims = Subspace.dim sub in
  let rng = Rng.create 42 in
  let sens = Sensitivity.create ~dims () in
  let parent = case (Subspace.random_point rng sub) in
  for m = 0 to (1 lsl dims) - 2 do
    let mask = Array.init dims (fun i -> m land (1 lsl i) <> 0) in
    for _ = 1 to 25 do
      let offspring, axis =
        Mutator.mutate ~mask Mutator.default_params rng sub sens ~parent
      in
      checkb
        (Printf.sprintf "mask %d respects pins" m)
        true
        (pinned_untouched sub mask parent offspring axis)
    done
  done

let test_mask_validation () =
  let sub = subspace_of_cards [ 3; 3 ] in
  let rng = Rng.create 1 in
  let sens = Sensitivity.create ~dims:2 () in
  let parent = case (Subspace.random_point rng sub) in
  let raises mask =
    match Mutator.mutate ~mask Mutator.default_params rng sub sens ~parent with
    | exception Invalid_argument _ -> true
    | (_ : Point.t * int) -> false
  in
  checkb "length mismatch rejected" true (raises [| true |]);
  checkb "all-pinned mask rejected" true (raises [| true; true |])

let test_sensitivity_mask_pins_above_uniform () =
  let sens = Sensitivity.create ~dims:4 () in
  checkb "uniform sensitivity pins nothing" true
    (Array.for_all not (Sensitivity.mask sens));
  (* Reward one axis until it rises above the uniform share; only that
     axis may be pinned, so a free axis always remains. *)
  for _ = 1 to 10 do
    Sensitivity.record sens ~axis:2 ~fitness:5.0
  done;
  let mask = Sensitivity.mask sens in
  checkb "hot axis pinned" true mask.(2);
  checkb "a free axis remains" true (Array.exists not mask)

(* --- masked rejects are attributed, not silent ------------------------- *)

let test_masked_rejects_attributed () =
  (* Pin the only axis with alternatives: every masked attempt
     regenerates the parent (the free axis is unary), gets rejected as a
     duplicate, and the attempt budget falls back to a random point. The
     stats must attribute the whole budget to masked rejects — this is
     the counter that makes a mask-degraded session visible. *)
  let sub = subspace_of_cards [ 4; 1 ] in
  let rng = Rng.create 7 in
  let sens = Sensitivity.create ~dims:2 () in
  let parent = case (Point.of_list [ 1; 0 ]) in
  let queue = Pqueue.create ~capacity:4 in
  ignore (Pqueue.insert rng queue parent);
  let history = History.create () in
  History.add history parent.Test_case.point;
  let stats = Mutator.create_stats () in
  let proposal =
    Mutator.next ~stats
      ~mask:(fun _ -> Some [| true; false |])
      Mutator.default_params rng sub sens ~queue ~history
      ~is_pending:(fun _ -> false)
  in
  checkb "fallback proposal is random" true
    (proposal.Mutator.mutated_axis = None);
  checki "one proposal" 1 stats.Mutator.proposals;
  checki "every attempt was a masked reject"
    Mutator.default_params.Mutator.max_attempts stats.Mutator.masked_rejects;
  checki "no unmasked rejects" 0 stats.Mutator.rejects;
  checki "no masked accepts" 0 stats.Mutator.masked;
  checki "one random fallback" 1 stats.Mutator.random_fallbacks

let test_unmasked_stats_unchanged_draws () =
  (* Supplying stats must not change the draw sequence: the same seed
     with and without stats yields the same proposal. *)
  let sub = subspace_of_cards [ 5; 5; 5 ] in
  let sens = Sensitivity.create ~dims:3 () in
  let run with_stats =
    let rng = Rng.create 99 in
    let queue = Pqueue.create ~capacity:4 in
    ignore (Pqueue.insert rng queue (case (Point.of_list [ 2; 2; 2 ])));
    let history = History.create () in
    let stats = if with_stats then Some (Mutator.create_stats ()) else None in
    (Mutator.next ?stats Mutator.default_params rng sub sens ~queue ~history
       ~is_pending:(fun _ -> false))
      .Mutator.point
  in
  checks "same proposal" (Point.key (run false)) (Point.key (run true))

(* --- end-to-end determinism with rarity + masking ----------------------- *)

let small = Replsim.make ~n:6 ~rounds:120 ~seed:9 ()

let executor c =
  Afex.Executor.of_scenario_fn ~total_blocks:(Replsim.total_blocks c)
    ~description:(Replfault.description c)
    (Replfault.run_scenario c)

let rarity_config seed =
  Config.with_rarity ~weight:2.0 ~cutoff:0.1 ~mask:true
    (Config.fitness_guided ~seed ())

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      ( Point.key c.Test_case.point,
        Outcome.status_to_string c.Test_case.status,
        c.Test_case.fitness ))
    r.Session.executed

let test_history_identical_across_jobs () =
  let run jobs =
    let r, _ =
      Pool.run ~jobs ~iterations:300 (rarity_config 21)
        (Replfault.multi_space ~arms:2 small)
        (Pool.Pure (executor small))
    in
    history r
  in
  let h1 = run 1 in
  checkb "jobs 1 = jobs 4 under rarity+mask" true (h1 = run 4)

let test_history_identical_across_inflight () =
  let run inflight =
    let r, _ =
      Pool.run ~inflight ~jobs:1 ~iterations:300 (rarity_config 21)
        (Replfault.multi_space ~arms:2 small)
        (Pool.Pure (executor small))
    in
    history r
  in
  let h1 = run 1 in
  checkb "inflight 1 = inflight 8 under rarity+mask" true (h1 = run 8)

let test_session_reports_rarity () =
  let sub = Replfault.multi_space ~arms:2 small in
  let r = Session.run ~iterations:150 (rarity_config 5) sub (executor small) in
  checkb "rare-block count reported" true (r.Session.rare_blocks <> None);
  checkb "mutator proposals tallied" true (r.Session.mutator.Mutator.proposals > 0);
  let paper =
    Session.run ~iterations:50 (Config.fitness_guided ~seed:5 ()) sub
      (executor small)
  in
  checkb "no rare-block count without rarity" true
    (paper.Session.rare_blocks = None)

exception Crash

let rarity_meta =
  [
    ("format", "1");
    ("target", "replsim");
    ("seed", "33");
    ("rarity", "true");
    ("mask", "true");
  ]

let session_exports ?checkpoint () =
  let result, _ =
    Pool.run ?checkpoint ~jobs:1 ~batch_size:8 ~iterations:150
      (rarity_config 33)
      (Replfault.multi_space ~arms:2 small)
      (Pool.Pure (executor small))
  in
  (Export.summary_to_json ~target:"replsim" result, Export.records_to_csv result)

let test_checkpoint_resume_mid_campaign () =
  let base_json, base_csv = session_exports () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "afex_rarity_ck_%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* Crash mid-campaign at the 40th journal append; the resumed
         campaign restores the rarity histogram, the rare-block map and
         the mutator tallies from the snapshot, so its exports must be
         byte-identical to an uninterrupted run. *)
      let hooks =
        {
          Checkpoint.no_hooks with
          Checkpoint.on_append = (fun n -> if n = 40 then raise Crash);
        }
      in
      (match Checkpoint.start ~hooks ~every:25 ~dir rarity_meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          let crashed =
            match session_exports ~checkpoint:cp () with
            | _ -> false
            | exception Crash -> true
          in
          Checkpoint.close cp;
          checkb "campaign crashed mid-flight" true crashed);
      match Checkpoint.resume ~every:25 ~dir rarity_meta with
      | Error e -> Alcotest.fail e
      | Ok cp ->
          Fun.protect
            ~finally:(fun () -> Checkpoint.close cp)
            (fun () ->
              let json, csv = session_exports ~checkpoint:cp () in
              checks "JSON identical after resume" base_json json;
              checks "CSV identical after resume" base_csv csv))

let test_snapshot_rejects_rarity_mismatch () =
  let sub = Replfault.multi_space ~arms:2 small in
  let exec = executor small in
  let explore config =
    let e = Afex.Explorer.create config sub exec in
    for _ = 1 to 30 do
      match Afex.Explorer.next e with
      | None -> ()
      | Some p -> ignore (Afex.Explorer.execute e p)
    done;
    e
  in
  let with_rarity = Afex.Explorer.capture (explore (rarity_config 3)) in
  let without = Afex.Explorer.capture (explore (Config.fitness_guided ~seed:3 ())) in
  let err config snap =
    match Afex.Explorer.restore config sub exec snap with
    | Error _ -> true
    | Ok (_ : Afex.Explorer.t) -> false
  in
  checkb "histogram under a rarity-free config rejected" true
    (err (Config.fitness_guided ~seed:3 ()) with_rarity);
  checkb "missing histogram under a rarity config rejected" true
    (err (rarity_config 3) without);
  checkb "matching configs restore" false (err (rarity_config 3) with_rarity)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("prop bonus monotone", test_prop_bonus_monotone);
      ("prop dump/load roundtrip", test_prop_dump_load_roundtrip);
      ("load rejects malformed", test_load_rejects_malformed);
      ("empty coverage earns nothing", test_empty_coverage_earns_nothing);
      ("prop mask never mutates pinned", test_prop_mask_never_mutates_pinned);
      ("exhaustive masks respect pins", test_exhaustive_masks_on_fixed_subspace);
      ("mask validation", test_mask_validation);
      ("sensitivity mask pins above uniform", test_sensitivity_mask_pins_above_uniform);
      ("masked rejects attributed", test_masked_rejects_attributed);
      ("stats do not change draws", test_unmasked_stats_unchanged_draws);
      ("history identical across jobs", test_history_identical_across_jobs);
      ("history identical across inflight", test_history_identical_across_inflight);
      ("session reports rarity", test_session_reports_rarity);
      ("checkpoint/resume mid-campaign", test_checkpoint_resume_mid_campaign);
      ("snapshot rejects rarity mismatch", test_snapshot_rejects_rarity_mismatch);
    ]
