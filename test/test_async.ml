(* Tests for the async execution stack: the Prop harness itself, the
   timer wheel, the single-domain event-loop executor, pipelined remote
   dispatch (out-of-order matching, straggler timeouts, non-blocking
   backoff), and the determinism invariant — the explored history is
   identical at every --inflight value. *)

module Transport = Afex_cluster.Transport
module Message = Afex_cluster.Message
module RM = Afex_cluster.Remote_manager
module AE = Afex_cluster.Async_executor
module TW = Afex_cluster.Async_executor.Timer_wheel
module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Point = Afex_faultspace.Point
module Scenario = Afex_faultspace.Scenario
module Outcome = Afex_injector.Outcome
module Fault = Afex_injector.Fault
module Bitset = Afex_stats.Bitset
module Target = Afex_simtarget.Target
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let executor () = Afex.Executor.of_target (Apache.target ())

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) ->
      ( Point.key c.Test_case.point,
        Outcome.status_to_string c.Test_case.status,
        c.Test_case.fitness ))
    r.Session.executed

let outcome_equal (a : Outcome.t) (b : Outcome.t) =
  Fault.equal a.Outcome.fault b.Outcome.fault
  && a.Outcome.status = b.Outcome.status
  && a.Outcome.triggered = b.Outcome.triggered
  && Bitset.equal a.Outcome.coverage b.Outcome.coverage
  && a.Outcome.duration_ms = b.Outcome.duration_ms

let sample_scenarios n =
  let exec = executor () in
  let explorer =
    Afex.Explorer.create (Config.random_search ~seed:99 ()) (Apache.space ()) exec
  in
  List.init n (fun _ ->
      match Afex.Explorer.next explorer with
      | Some p -> Afex.Explorer.scenario_for explorer p
      | None -> Alcotest.fail "sample_scenarios: space exhausted")

(* --- the Prop harness itself ------------------------------------------ *)

let test_prop_true_property_passes () =
  match
    Prop.find_counterexample ~count:300 (Prop.int_range 0 1000) (fun n ->
        n >= 0 && n <= 1000)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "a true property must not be falsified"

let test_prop_shrinks_int_to_boundary () =
  (* "every int is < 50" fails; greedy shrinking must land exactly on the
     boundary value, not on whatever case happened to fail first. *)
  match
    Prop.find_counterexample ~count:300 (Prop.int_range 0 1000) (fun n -> n < 50)
  with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      checki "minimal counterexample" 50 f.Prop.shrunk;
      checkb "original was at least as large" true (f.Prop.original >= 50)

let test_prop_shrinks_list_structurally () =
  (* "every list is shorter than 3" — minimal counterexample is three
     zeros: first drop elements, then shrink the survivors. *)
  match
    Prop.find_counterexample ~count:300
      (Prop.list ~max_length:8 (Prop.int_range 0 9))
      (fun l -> List.length l < 3)
  with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      checkb "minimal counterexample is [0; 0; 0]" true (f.Prop.shrunk = [ 0; 0; 0 ])

let test_prop_pair_shrinks_both_sides () =
  match
    Prop.find_counterexample ~count:500
      (Prop.pair (Prop.int_range 0 100) (Prop.int_range 0 100))
      (fun (a, b) -> a + b < 60)
  with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      let a, b = f.Prop.shrunk in
      checki "shrunk to the boundary" 60 (a + b)

(* --- the timer wheel -------------------------------------------------- *)

let test_wheel_orders_by_deadline_then_seq () =
  let w = TW.create ~granularity_ms:1.0 ~slots:16 ~now_ms:0.0 () in
  ignore (TW.schedule w ~at_ms:5.0 "a");
  ignore (TW.schedule w ~at_ms:2.0 "b");
  ignore (TW.schedule w ~at_ms:5.0 "c");
  ignore (TW.schedule w ~at_ms:0.5 "d");
  checki "pending" 4 (TW.pending w);
  checkf "next deadline" 0.5 (Option.get (TW.next_deadline w));
  checkb "first advance" true (TW.advance w ~now_ms:1.0 = [ "d" ]);
  checkf "next deadline after expiry" 2.0 (Option.get (TW.next_deadline w));
  (* Ties at 5.0 break by scheduling order: a before c. *)
  checkb "deadline order, ties by insertion" true
    (TW.advance w ~now_ms:10.0 = [ "b"; "a"; "c" ]);
  checki "drained" 0 (TW.pending w);
  checkb "no deadline left" true (TW.next_deadline w = None)

let test_wheel_wraparound () =
  (* 8 slots * 1 ms: deadlines 3.0 and 19.0 share a bucket, but the far
     one must not fire a rotation early. *)
  let w = TW.create ~granularity_ms:1.0 ~slots:8 ~now_ms:0.0 () in
  ignore (TW.schedule w ~at_ms:3.0 `Near);
  ignore (TW.schedule w ~at_ms:19.0 `Far);
  checkb "only the near entry fires" true (TW.advance w ~now_ms:4.0 = [ `Near ]);
  checkb "far entry still pending" true (TW.pending w = 1);
  checkb "nothing fires in between" true (TW.advance w ~now_ms:18.0 = []);
  checkb "far entry fires on time" true (TW.advance w ~now_ms:20.0 = [ `Far ])

let test_wheel_cancel () =
  let w = TW.create ~now_ms:0.0 () in
  let e1 = TW.schedule w ~at_ms:1.0 1 in
  let _e2 = TW.schedule w ~at_ms:2.0 2 in
  TW.cancel w e1;
  TW.cancel w e1 (* idempotent *);
  checki "one pending after cancel" 1 (TW.pending w);
  checkf "deadline skips the cancelled entry" 2.0 (Option.get (TW.next_deadline w));
  checkb "cancelled entries never fire" true (TW.advance w ~now_ms:5.0 = [ 2 ])

let test_wheel_expiry_order_property () =
  (* For any bag of delays, expiry order is a stable sort by deadline. *)
  Prop.check ~count:100 "timer wheel expiry ordering"
    (Prop.list ~max_length:20 (Prop.float_range 0.0 50.0))
    (fun delays ->
      let w = TW.create ~granularity_ms:1.0 ~slots:8 ~now_ms:0.0 () in
      List.iteri (fun i d -> ignore (TW.schedule w ~at_ms:d i)) delays;
      let fired = TW.advance w ~now_ms:60.0 in
      let expected =
        List.map snd
          (List.stable_sort
             (fun (a, _) (b, _) -> compare a b)
             (List.mapi (fun i d -> (d, i)) delays))
      in
      fired = expected && TW.pending w = 0)

let test_wheel_zero_delay () =
  (* A deadline equal to now (or already past — clamped to now) must fire
     on the very next advance, without the clock moving at all. *)
  let w = TW.create ~granularity_ms:1.0 ~slots:16 ~now_ms:5.0 () in
  ignore (TW.schedule w ~at_ms:5.0 "now");
  ignore (TW.schedule w ~at_ms:1.0 "past");
  checki "both pending" 2 (TW.pending w);
  checkb "zero-delay entries fire without time passing" true
    (TW.advance w ~now_ms:5.0 = [ "now"; "past" ]);
  checki "drained" 0 (TW.pending w);
  checkb "no deadline left" true (TW.next_deadline w = None)

let test_wheel_shared_deadline_bucket () =
  (* Jobs sharing one exact deadline land in one slot: all must fire
     together in scheduling order, and cancelling one must not take its
     bucket-mates with it. *)
  let w = TW.create ~granularity_ms:1.0 ~slots:8 ~now_ms:0.0 () in
  let a = TW.schedule w ~at_ms:3.0 "a" in
  ignore (TW.schedule w ~at_ms:3.0 "b");
  ignore (TW.schedule w ~at_ms:3.0 "c");
  checkf "one shared deadline" 3.0 (Option.get (TW.next_deadline w));
  TW.cancel w a;
  checki "two survivors after cancel" 2 (TW.pending w);
  checkb "survivors fire together, in scheduling order" true
    (TW.advance w ~now_ms:3.0 = [ "b"; "c" ]);
  checki "bucket empty" 0 (TW.pending w)

(* --- history determinism across inflight ------------------------------ *)

let latency_async () =
  let exec = executor () in
  let model = Target.latency_model ~seed:7 (Target.Uniform { lo = 0.05; hi = 0.4 }) in
  Afex.Executor.delayed
    ~delay_ms:(fun scenario ->
      Target.latency_ms model (Scenario.to_string scenario))
    exec

let async_run ~inflight () =
  let pool = Pool.create ~inflight ~jobs:1 (Pool.Async (latency_async ())) in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let result, stats =
        Pool.session ~batch_size:16 ~iterations:120 pool
          (Config.fitness_guided ~seed:5 ())
          (Apache.space ())
      in
      (history result, stats, Pool.async_stats pool))

let blocking_history () =
  let result, _ =
    Pool.run ~jobs:1 ~batch_size:16 ~iterations:120
      (Config.fitness_guided ~seed:5 ())
      (Apache.space ())
      (Pool.Pure (executor ()))
  in
  history result

let test_history_identical_across_inflight () =
  let blocking = blocking_history () in
  List.iter
    (fun inflight ->
      let h, _, async_stats = async_run ~inflight () in
      checkb
        (Printf.sprintf "inflight %d history equals blocking pool history"
           inflight)
        true (h = blocking);
      match async_stats with
      | None -> Alcotest.fail "expected event-loop mode"
      | Some s ->
          if inflight > 1 then
            checkb "tests actually overlapped" true (s.AE.max_inflight > 1))
    [ 1; 4; 32 ]

let test_async_session_counts_pinned () =
  (* Counts are seed-deterministic (never wall-clock): a behaviour change
     in candidate generation, memoization or the merge shows up here. *)
  let _, stats, _ = async_run ~inflight:8 () in
  checki "executed" 120 stats.Pool.executed;
  checki "cache hits" 0 stats.Pool.cache_hits;
  checki "batches" 8 stats.Pool.batches;
  checki "no remotes involved" 0 stats.Pool.remote_runs

(* --- the deterministic latency model ---------------------------------- *)

let test_latency_model_deterministic () =
  let model = Target.latency_model ~seed:42 (Target.Uniform { lo = 1.0; hi = 3.0 }) in
  let keys = List.init 50 (Printf.sprintf "scenario-%d") in
  List.iter
    (fun key ->
      let a = Target.latency_ms model key and b = Target.latency_ms model key in
      checkf "same key, same latency" a b;
      checkb "within the distribution's support" true (a >= 1.0 && a <= 3.0))
    keys;
  let distinct =
    List.sort_uniq compare (List.map (Target.latency_ms model) keys)
  in
  checkb "keys spread over the range" true (List.length distinct > 25);
  let other = Target.latency_model ~seed:43 (Target.Uniform { lo = 1.0; hi = 3.0 }) in
  checkb "the seed matters" true
    (List.exists
       (fun k -> Target.latency_ms model k <> Target.latency_ms other k)
       keys)

let test_latency_distributions () =
  let fixed = Target.latency_model (Target.Fixed 5.0) in
  checkf "fixed is fixed" 5.0 (Target.latency_ms fixed "anything");
  let bimodal =
    Target.latency_model ~seed:1
      (Target.Bimodal { fast = 1.0; slow = 100.0; slow_share = 0.3 })
  in
  let draws = List.init 200 (fun i -> Target.latency_ms bimodal (string_of_int i)) in
  checkb "bimodal draws only the two modes" true
    (List.for_all (fun d -> d = 1.0 || d = 100.0) draws);
  checkb "both modes appear" true
    (List.exists (( = ) 1.0) draws && List.exists (( = ) 100.0) draws);
  let exp = Target.latency_model ~seed:2 (Target.Exponential { mean = 10.0 }) in
  let draws = List.init 500 (fun i -> Target.latency_ms exp (string_of_int i)) in
  let mean = List.fold_left ( +. ) 0.0 draws /. 500.0 in
  checkb "exponential draws are positive" true (List.for_all (fun d -> d >= 0.0) draws);
  checkb "empirical mean near the model mean" true (mean > 6.0 && mean < 14.0);
  checkb "invalid parameters rejected" true
    (try
       ignore (Target.latency_model (Target.Uniform { lo = 3.0; hi = 1.0 }));
       false
     with Invalid_argument _ -> true)

let test_latency_dist_string_roundtrip () =
  List.iter
    (fun dist ->
      match Target.latency_dist_of_string (Target.latency_dist_to_string dist) with
      | Ok d -> checkb "round-trips" true (d = dist)
      | Error e -> Alcotest.failf "did not round-trip: %s" e)
    [
      Target.Fixed 2.5;
      Target.Uniform { lo = 0.5; hi = 4.0 };
      Target.Exponential { mean = 12.0 };
      Target.Bimodal { fast = 1.0; slow = 50.0; slow_share = 0.125 };
    ];
  List.iter
    (fun s ->
      checkb (Printf.sprintf "reject %S" s) true
        (match Target.latency_dist_of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "gaussian:3"; "fixed:"; "uniform:5-1"; "exp:-2"; "bimodal:1,2"; "fixed:fast" ]

(* --- pipelined remote dispatch ---------------------------------------- *)

(* A hand-rolled manager that answers requests in *reverse* arrival
   order: correctness must come from seq matching, not luck. *)
let test_pipelined_out_of_order_responses () =
  let exec = executor () in
  let client_end, server_end = Transport.pair () in
  let server =
    Domain.spawn (fun () ->
        let recv () =
          match server_end.Transport.recv () with
          | Ok line -> line
          | Error e -> Alcotest.failf "server recv: %s" (Transport.string_of_error e)
        in
        ignore (recv ()) (* HELLO *);
        (match
           server_end.Transport.send
             (Message.encode_welcome ~version:Message.protocol_version)
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "server: welcome failed");
        let requests =
          List.init 3 (fun _ ->
              match Message.decode_to_manager (recv ()) with
              | Ok (Message.Run_scenario { seq; scenario }) -> (seq, scenario)
              | Ok _ | Error _ -> Alcotest.fail "server: expected a run request")
        in
        List.iter
          (fun (seq, scenario) ->
            let outcome = exec.Afex.Executor.run_scenario scenario in
            match
              server_end.Transport.send
                (Message.encode_from_manager
                   (Message.Scenario_result (Message.report_of_outcome ~seq outcome)))
            with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "server: reply failed")
          (List.rev requests);
        server_end.Transport.close ())
  in
  let dialed = ref false in
  let spec =
    RM.spec ~name:"reverser" (fun () ->
        if !dialed then Error (Transport.Io "single-shot dial")
        else begin
          dialed := true;
          Ok client_end
        end)
  in
  let conn = RM.Pipelined.create spec ~total_blocks:exec.Afex.Executor.total_blocks in
  let scenarios = Array.of_list (sample_scenarios 3) in
  Array.iteri
    (fun tag scenario ->
      match RM.Pipelined.submit conn ~tag scenario with
      | Ok () -> ()
      | Error e -> Alcotest.failf "submit: %s" (RM.string_of_error e))
    scenarios;
  checki "three requests on the wire" 3 (RM.Pipelined.pending conn);
  checkb "tags are tracked" true
    (RM.Pipelined.awaiting conn 0 && RM.Pipelined.awaiting conn 2);
  let collected = Hashtbl.create 3 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Hashtbl.length collected < 3 && Unix.gettimeofday () < deadline do
    List.iter
      (fun (tag, result) ->
        match result with
        | Ok outcome -> Hashtbl.replace collected tag outcome
        | Error e -> Alcotest.failf "drain: %s" (RM.string_of_error e))
      (RM.Pipelined.drain conn);
    if Hashtbl.length collected < 3 then Unix.sleepf 0.002
  done;
  checki "all three responses matched" 3 (Hashtbl.length collected);
  checki "nothing left outstanding" 0 (RM.Pipelined.pending conn);
  Array.iteri
    (fun tag scenario ->
      let local = exec.Afex.Executor.run_scenario scenario in
      checkb
        (Printf.sprintf "tag %d matched its own scenario despite reversal" tag)
        true
        (outcome_equal (Hashtbl.find collected tag) local))
    scenarios;
  RM.Pipelined.close conn;
  ignore (Domain.join server)

let test_slow_manager_times_out_to_local () =
  (* The manager sleeps ~80 ms per test; the client's straggler bound is
     25 ms. Every remoted test must come back via local fallback and the
     history must be exactly the local one. *)
  let exec = executor () in
  let slow =
    Afex.Executor.sync_of_async
      (Afex.Executor.delayed ~delay_ms:(fun _ -> 80.0) exec)
  in
  let lb = RM.Loopback.create ~executor:slow () in
  let pool =
    Pool.create
      ~remotes:[ RM.Loopback.spec ~max_attempts:2 ~backoff_ms:1.0 lb ]
      ~inflight:8 ~request_timeout_ms:25 ~jobs:1 (Pool.Pure exec)
  in
  let result, stats =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.session ~batch_size:16 ~iterations:60 pool
          (Config.fitness_guided ~seed:5 ())
          (Apache.space ()))
  in
  RM.Loopback.shutdown lb;
  let local, _ =
    Pool.run ~jobs:1 ~batch_size:16 ~iterations:60
      (Config.fitness_guided ~seed:5 ())
      (Apache.space ())
      (Pool.Pure (executor ()))
  in
  checkb "history survives a hopeless manager" true (history result = history local);
  checkb "stragglers fell back locally" true (stats.Pool.remote_fallbacks > 0);
  checkb "the manager was written off after its attempts" true
    (RM.Loopback.connections lb <= 2)

let test_dead_remote_backoff_never_blocks () =
  (* A manager that cannot even be dialed, with a 10-second backoff: the
     campaign must still finish promptly, because backoff is a timer-wheel
     deadline, not a sleep on the dispatch path. *)
  let dead =
    RM.spec ~name:"dead" ~max_attempts:3 ~backoff_ms:10_000.0 (fun () ->
        Error (Transport.Io "connection refused"))
  in
  let started = Unix.gettimeofday () in
  let result, stats =
    Pool.run
      ~remotes:[ dead ]
      ~inflight:4 ~jobs:1 ~batch_size:16 ~iterations:60
      (Config.fitness_guided ~seed:5 ())
      (Apache.space ())
      (Pool.Pure (executor ()))
  in
  let wall_s = Unix.gettimeofday () -. started in
  let local, _ =
    Pool.run ~jobs:1 ~batch_size:16 ~iterations:60
      (Config.fitness_guided ~seed:5 ())
      (Apache.space ())
      (Pool.Pure (executor ()))
  in
  checkb "history unaffected by the dead manager" true
    (history result = history local);
  checkb "dial failures fell back" true (stats.Pool.remote_fallbacks > 0);
  checkb "the 10s backoff never blocked the loop" true (wall_s < 5.0)

let test_chaos_under_pipelining () =
  (* The chaos mangler corrupts both directions while eight requests ride
     one connection: every drop/bitflip must end in a local fallback or a
     clean re-dial, never a wrong or lost outcome. *)
  let mild =
    {
      Transport.drop = 0.15;
      duplicate = 0.15;
      truncate = 0.05;
      bitflip = 0.1;
      garbage = 0.1;
    }
  in
  let exec = executor () in
  let lb =
    RM.Loopback.create ~chaos_to_server:mild ~chaos_to_client:mild ~chaos_seed:17
      ~recv_timeout_ms:40 ~executor:exec ()
  in
  let pool =
    Pool.create
      ~remotes:[ RM.Loopback.spec ~max_attempts:10 ~backoff_ms:0.2 lb ]
      ~inflight:8 ~request_timeout_ms:50 ~jobs:1 (Pool.Pure exec)
  in
  let result, stats =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.session ~batch_size:16 ~iterations:100 pool
          (Config.fitness_guided ~seed:5 ())
          (Apache.space ()))
  in
  RM.Loopback.shutdown lb;
  let local, _ =
    Pool.run ~jobs:1 ~batch_size:16 ~iterations:100
      (Config.fitness_guided ~seed:5 ())
      (Apache.space ())
      (Pool.Pure (executor ()))
  in
  checkb "chaos never corrupts the explored history" true
    (history result = history local);
  checkb "requests were pipelined onto the mangled wire" true
    (stats.Pool.remote_runs > 0);
  checkb "chaos forced local fallbacks" true (stats.Pool.remote_fallbacks > 0)

let test_pipelined_fail_cancels_awaiting () =
  (* The straggler path: a request is on the wire, the manager dies, and
     the caller declares the connection dead while it is gated behind its
     reconnect backoff. The awaiting entry must be cancelled (so a stale
     request timer firing later finds [awaiting = false] and is a no-op),
     the tag must come back exactly once via take_orphans, and repeated
     deaths must spend the retry budget. *)
  let exec = executor () in
  let slow =
    Afex.Executor.sync_of_async
      (Afex.Executor.delayed ~delay_ms:(fun _ -> 200.0) exec)
  in
  let lb = RM.Loopback.create ~executor:slow () in
  let spec = RM.Loopback.spec ~max_attempts:2 ~backoff_ms:5.0 lb in
  let conn =
    RM.Pipelined.create spec ~total_blocks:exec.Afex.Executor.total_blocks
  in
  let scenario = List.hd (sample_scenarios 1) in
  (match RM.Pipelined.submit conn ~tag:7 scenario with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit: %s" (RM.string_of_error e));
  checkb "request is on the wire" true (RM.Pipelined.awaiting conn 7);
  RM.Pipelined.fail conn;
  checkb "awaiting cancelled by the death" false (RM.Pipelined.awaiting conn 7);
  checkb "orphaned exactly once" true (RM.Pipelined.take_orphans conn = [ 7 ]);
  checkb "a second take finds nothing" true (RM.Pipelined.take_orphans conn = []);
  checki "one consecutive failure" 1 (RM.Pipelined.failures conn);
  checkb "backoff surfaced as data, never a sleep" true
    (RM.Pipelined.backoff_ms conn >= 5.0);
  checkb "still dispatchable before the budget is spent" true
    (RM.Pipelined.dispatchable conn);
  (* The remote dies again mid-backoff, before any reconnect: no request
     is in flight, so no phantom orphan may appear — but the failure must
     still count against the budget. *)
  RM.Pipelined.fail conn;
  checki "failures accumulate" 2 (RM.Pipelined.failures conn);
  checkb "no phantom orphans" true (RM.Pipelined.take_orphans conn = []);
  checkb "written off after max_attempts" true (RM.Pipelined.abandoned conn);
  checkb "an abandoned manager is never dispatched to" false
    (RM.Pipelined.dispatchable conn);
  RM.Pipelined.close conn;
  RM.Loopback.shutdown lb

let test_async_zero_delay_jobs () =
  (* delay 0: every job's readiness estimate is already due at dispatch.
     The loop must complete the batch without spinning and the outcomes
     must match a synchronous run. *)
  let exec = executor () in
  let instant = Afex.Executor.delayed ~delay_ms:(fun _ -> 0.0) exec in
  let scenarios = Array.of_list (sample_scenarios 6) in
  let ae =
    AE.create ~inflight:3 ~total_blocks:exec.Afex.Executor.total_blocks ()
  in
  let tasks =
    Array.map
      (fun scenario ->
        {
          AE.scenario = Some scenario;
          start = (fun () -> instant.Afex.Executor.start scenario);
        })
      scenarios
  in
  let results = AE.exec_batch ae tasks in
  Array.iteri
    (fun i result ->
      match result with
      | Ok outcome ->
          checkb
            (Printf.sprintf "zero-delay job %d matches the sync outcome" i)
            true
            (outcome_equal outcome (exec.Afex.Executor.run_scenario scenarios.(i)))
      | Error _ -> Alcotest.failf "zero-delay job %d failed" i)
    results;
  checki "all ran locally" 6 (AE.stats ae).AE.local_runs

(* --- fd-backed jobs ---------------------------------------------------- *)

let test_fd_backed_jobs_overlap () =
  (* Jobs whose readiness is an OS fd (the shape of a wrapped fork/exec'd
     target): the loop must discover completions via select and overlap
     the waits. *)
  let exec = executor () in
  let scenarios = Array.of_list (sample_scenarios 4) in
  let writers = ref [] in
  let make_task i scenario =
    let delay_s = 0.02 +. (0.01 *. float_of_int i) in
    {
      AE.scenario = None;
      start =
        (fun () ->
          let r, w = Unix.pipe () in
          writers :=
            Domain.spawn (fun () ->
                Unix.sleepf delay_s;
                ignore (Unix.write w (Bytes.of_string "x") 0 1);
                Unix.close w)
            :: !writers;
          let outcome = ref None in
          {
            Afex.Executor.poll =
              (fun () ->
                match !outcome with
                | Some o -> Some o
                | None -> (
                    match Unix.select [ r ] [] [] 0.0 with
                    | [], _, _ -> None
                    | _ ->
                        ignore (Unix.read r (Bytes.create 1) 0 1);
                        Unix.close r;
                        let o = exec.Afex.Executor.run_scenario scenario in
                        outcome := Some o;
                        Some o));
            wait_fd = Some r;
            ready_at_ms = (fun () -> None);
          });
    }
  in
  let ae = AE.create ~inflight:4 ~total_blocks:exec.Afex.Executor.total_blocks () in
  let started = Unix.gettimeofday () in
  let results = AE.exec_batch ae (Array.mapi make_task scenarios) in
  let wall_s = Unix.gettimeofday () -. started in
  List.iter Domain.join !writers;
  Array.iteri
    (fun i result ->
      match result with
      | Ok outcome ->
          checkb
            (Printf.sprintf "fd job %d produced the right outcome" i)
            true
            (outcome_equal outcome (exec.Afex.Executor.run_scenario scenarios.(i)))
      | Error _ -> Alcotest.failf "fd job %d failed" i)
    results;
  (* Sequential would be 20+30+40+50 = 140 ms; overlapped is ~50 ms. *)
  checkb "waits overlapped" true (wall_s < 0.120);
  checki "window filled" 4 (AE.stats ae).AE.max_inflight

let suite =
  [
    Alcotest.test_case "prop: true property passes" `Quick
      test_prop_true_property_passes;
    Alcotest.test_case "prop: int shrinks to boundary" `Quick
      test_prop_shrinks_int_to_boundary;
    Alcotest.test_case "prop: list shrinks structurally" `Quick
      test_prop_shrinks_list_structurally;
    Alcotest.test_case "prop: pair shrinks both sides" `Quick
      test_prop_pair_shrinks_both_sides;
    Alcotest.test_case "wheel: deadline order with ties" `Quick
      test_wheel_orders_by_deadline_then_seq;
    Alcotest.test_case "wheel: wraparound" `Quick test_wheel_wraparound;
    Alcotest.test_case "wheel: cancel" `Quick test_wheel_cancel;
    Alcotest.test_case "wheel: expiry ordering (property)" `Quick
      test_wheel_expiry_order_property;
    Alcotest.test_case "wheel: zero-delay deadlines" `Quick test_wheel_zero_delay;
    Alcotest.test_case "wheel: shared deadline bucket" `Quick
      test_wheel_shared_deadline_bucket;
    Alcotest.test_case "history identical across inflight" `Quick
      test_history_identical_across_inflight;
    Alcotest.test_case "async session counts pinned" `Quick
      test_async_session_counts_pinned;
    Alcotest.test_case "latency model is deterministic" `Quick
      test_latency_model_deterministic;
    Alcotest.test_case "latency distributions" `Quick test_latency_distributions;
    Alcotest.test_case "latency dist string round-trip" `Quick
      test_latency_dist_string_roundtrip;
    Alcotest.test_case "pipelined out-of-order responses" `Quick
      test_pipelined_out_of_order_responses;
    Alcotest.test_case "slow manager times out to local" `Quick
      test_slow_manager_times_out_to_local;
    Alcotest.test_case "dead remote backoff never blocks" `Quick
      test_dead_remote_backoff_never_blocks;
    Alcotest.test_case "chaos under pipelining" `Quick test_chaos_under_pipelining;
    Alcotest.test_case "pipelined fail cancels awaiting" `Quick
      test_pipelined_fail_cancels_awaiting;
    Alcotest.test_case "zero-delay async jobs" `Quick test_async_zero_delay_jobs;
    Alcotest.test_case "fd-backed jobs overlap" `Quick test_fd_backed_jobs_overlap;
  ]
