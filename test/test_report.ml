(* Tests for afex_report: tables, figures, replay scripts, session reports. *)

module Table = Afex_report.Table
module Figure = Afex_report.Figure
module Replay = Afex_report.Replay
module Session_report = Afex_report.Session_report
module Config = Afex.Config
module Session = Afex.Session
module Apache = Afex_simtarget.Apache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* --- Table --- *)

let test_table_render () =
  let s =
    Table.render ~headers:[ "name"; "count" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  checki "header + rule + 2 rows + trailing" 5 (List.length lines);
  checks "header" "name   count" (List.nth lines 0);
  checks "right-aligned number" "alpha      1" (List.nth lines 2);
  checks "second row" "b         22" (List.nth lines 3)

let test_table_ragged_rows () =
  let s = Table.render ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  checkb "missing cells tolerated" true (contains s "x")

let test_table_formatters () =
  checks "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  checks "percent" "54.1%" (Table.fmt_percent 0.5412);
  checks "ratio" "2.50x" (Table.fmt_ratio 5.0 2.0);
  checks "ratio div by zero" "-" (Table.fmt_ratio 5.0 0.0)

(* --- Figure --- *)

let test_figure_matrix () =
  let s =
    Figure.impact_matrix ~col_labels:[ "read"; "close" ] ~row_labels:[ "t1"; "t2" ]
      ~cell:(fun ~row ~col ->
        if row = 0 && col = 0 then Some true
        else if row = 1 && col = 1 then None
        else Some false)
  in
  checkb "has failure glyph" true (contains s "#");
  checkb "has benign glyph" true (contains s ".");
  checkb "legend" true (contains s "test failure");
  checkb "row label" true (contains s "t1")

let test_figure_line_chart () =
  let s =
    Figure.line_chart
      ~series:[ ("up", [| 0.0; 5.0; 10.0 |]); ("flat", [| 1.0; 1.0; 1.0 |]) ]
      ()
  in
  checkb "glyph for first series" true (contains s "*");
  checkb "glyph for second series" true (contains s "o");
  checkb "legend names" true (contains s "up" && contains s "flat");
  checkb "axis" true (contains s "10.0")

let test_figure_line_chart_empty () =
  checks "empty data message" "(no data)\n" (Figure.line_chart ~series:[ ("x", [||]) ] ())

let test_figure_bar_chart () =
  let s = Figure.bar_chart ~items:[ ("big", 10.0); ("small", 1.0) ] () in
  checkb "bars drawn" true (contains s "#");
  checkb "values printed" true (contains s "10");
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  checki "one line per item" 2 (List.length lines)

(* --- Replay / session report (need a real session) --- *)

let session_result =
  lazy
    (Session.run ~iterations:300
       (Config.fitness_guided ~seed:33 ())
       (Apache.space ())
       (Afex.Executor.of_target (Apache.target ())))

let test_replay_script () =
  let r = Lazy.force session_result in
  match Session.top_faults r ~n:1 with
  | [ top ] ->
      let script = Replay.script ~target:"apache" top in
      checkb "shebang" true (contains script "#!/bin/sh";);
      checkb "mentions target" true (contains script "--target apache");
      checkb "mentions function" true
        (contains script ("--function " ^ top.Afex.Test_case.fault.Afex_injector.Fault.func));
      checkb "checks status" true (contains script "if [ \"$status\"")
  | _ -> Alcotest.fail "expected a top fault"

let test_replay_suite () =
  let r = Lazy.force session_result in
  let reps = Session.crash_cluster_representatives r in
  let script = Replay.suite ~target:"apache" reps in
  checkb "counts failures" true (contains script "failures=0");
  checkb "exit with failures" true (contains script "exit $failures")

let test_session_report_sections () =
  let r = Lazy.force session_result in
  let report = Session_report.render ~target:"apache" r in
  List.iter
    (fun needle -> checkb ("report contains " ^ needle) true (contains report needle))
    [
      "AFEX session report";
      "strategy";
      "fitness-guided";
      "failed tests";
      "top 10 faults by impact";
      "crash redundancy clusters";
      "code coverage";
    ]

let test_operational_summary () =
  let r = Lazy.force session_result in
  let s = Session_report.operational_summary r in
  checkb "tests executed line" true (contains s "tests executed    : 300")

(* --- golden replay regression --- *)

let test_golden_apache_export () =
  (* Re-run the campaign the committed golden file was generated from
     (afex explore --target apache --seed 7 -n 60 --batch 8 --jobs 1)
     and byte-diff the JSON export. Any change to the mutator, the
     pqueue, the RNG stream, the pool's merge order or the export format
     shows up here as a one-line diff against a file under version
     control — regenerate it deliberately, never silently. *)
  let golden_path = "golden/apache_seed7_n60_b8.json" in
  let golden =
    let ic = open_in_bin golden_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let result, _ =
    Afex_cluster.Pool.run ~batch_size:8 ~jobs:1 ~iterations:60
      (Config.fitness_guided ~seed:7 ())
      (Apache.space ())
      (Afex_cluster.Pool.Pure (Afex.Executor.of_target (Apache.target ())))
  in
  let fresh = Afex_report.Export.summary_to_json ~target:"apache" result in
  if fresh <> golden then begin
    let first_diff =
      let n = min (String.length fresh) (String.length golden) in
      let rec go i = if i < n && fresh.[i] = golden.[i] then go (i + 1) else i in
      go 0
    in
    Alcotest.failf
      "explored history drifted from the golden export (first diff at byte %d): %s"
      first_diff
      (String.sub fresh
         (max 0 (first_diff - 20))
         (min 60 (String.length fresh - max 0 (first_diff - 20))))
  end

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("table render", test_table_render);
      ("table ragged rows", test_table_ragged_rows);
      ("table formatters", test_table_formatters);
      ("figure matrix", test_figure_matrix);
      ("figure line chart", test_figure_line_chart);
      ("figure line chart empty", test_figure_line_chart_empty);
      ("figure bar chart", test_figure_bar_chart);
      ("replay script", test_replay_script);
      ("replay suite", test_replay_suite);
      ("session report sections", test_session_report_sections);
      ("operational summary", test_operational_summary);
      ("golden apache export", test_golden_apache_export);
    ]
